//! End-to-end execution tests: assemble small programs with `lfi-asm`, load
//! them with a library, run them, and check results, faults, interposition,
//! threads, and coverage.

use lfi_arch::{errno, Word};
use lfi_asm::assemble_text;
use lfi_vm::{
    CallContext, HookAction, HookHandler, Loader, Machine, NoHooks, ProcessConfig, RunExit,
};

/// A tiny hand-written "libc" with `my_read` and `my_write` wrappers around
/// the VM syscalls, setting errno on failure the way the real libc does.
const MINILIB: &str = r#"
    .module minilib lib
    .file "minilib.s"

    .func my_open
        movi r0, 0
        sys open
        cmpi r0, 0
        jge open_ok
        neg r0
        tlsst errno, r0
        movi r0, -1
    open_ok:
        ret

    .func my_read
        sys read
        cmpi r0, 0
        jge read_ok
        neg r0
        tlsst errno, r0
        movi r0, -1
    read_ok:
        ret

    .func my_write
        sys write
        cmpi r0, 0
        jge write_ok
        neg r0
        tlsst errno, r0
        movi r0, -1
    write_ok:
        ret

    .func my_lock
        sys mutex_lock
        ret

    .func my_unlock
        sys mutex_unlock
        ret

    .func my_exit
        sys exit
        ret
"#;

fn load_and_run(exe_src: &str) -> (Machine, RunExit) {
    let lib = assemble_text(MINILIB).expect("assemble minilib");
    let exe = assemble_text(exe_src).expect("assemble exe");
    let mut loader = Loader::new();
    loader.add_library(lib);
    let image = loader.load(exe).expect("load");
    let mut machine = Machine::new(image, ProcessConfig::default());
    machine.fs_mut().write_file("/input.txt", b"hello").unwrap();
    let exit = machine.run_to_completion(&mut NoHooks);
    (machine, exit)
}

#[test]
fn arithmetic_and_exit_code() {
    let src = r#"
        .module app exe
        .needed minilib
        .func main
            movi r10, 6
            movi r11, 7
            mov r0, r10
            mul r0, r11
            ret
    "#;
    let (_, exit) = load_and_run(src);
    assert_eq!(exit, RunExit::Exited(42));
}

#[test]
fn write_to_stdout_is_captured() {
    let src = r#"
        .module app exe
        .needed minilib
        .func main
            movi r1, 1            ; fd = stdout
            leasym r2, msg
            movi r3, 5
            callsym my_write
            movi r0, 0
            ret
        .string msg "hi ok"
    "#;
    let (machine, exit) = load_and_run(src);
    assert_eq!(exit, RunExit::Exited(0));
    assert_eq!(machine.output_string(), "hi ok");
}

#[test]
fn open_and_read_file_through_minilib() {
    let src = r#"
        .module app exe
        .needed minilib
        .func main
            leasym r1, path
            movi r2, 0
            movi r3, 0
            callsym my_open
            cmpi r0, 0
            jlt fail
            mov r1, r0            ; fd
            leasym r2, buf
            movi r3, 64
            callsym my_read       ; returns number of bytes read
            ret
        fail:
            movi r0, -1
            ret
        .string path "/input.txt"
        .bss buf 64
    "#;
    let (_, exit) = load_and_run(src);
    assert_eq!(exit, RunExit::Exited(5));
}

#[test]
fn missing_file_sets_errno_enoent() {
    let src = r#"
        .module app exe
        .needed minilib
        .func main
            leasym r1, path
            movi r2, 0
            movi r3, 0
            callsym my_open
            cmpi r0, -1
            jne bad
            tlsld r0, errno       ; exit code = errno
            ret
        bad:
            movi r0, 99
            ret
        .string path "/no/such/file"
    "#;
    let (_, exit) = load_and_run(src);
    assert_eq!(exit, RunExit::Exited(errno::ENOENT));
}

#[test]
fn null_dereference_faults_with_backtrace() {
    let src = r#"
        .module app exe
        .needed minilib
        .func main
            call helper
            ret
        .func helper
            movi r1, 0
            ld r0, [r1+0]        ; null dereference
            ret
    "#;
    let (_, exit) = load_and_run(src);
    let RunExit::Fault(fault) = exit else {
        panic!("expected a fault, got {exit:?}");
    };
    assert!(fault.to_string().contains("null dereference"));
    assert_eq!(fault.module, "app");
    // The backtrace records main's call to helper.
    assert!(fault
        .backtrace
        .iter()
        .any(|f| f.function.as_deref() == Some("main")));
}

#[test]
fn division_by_zero_faults() {
    let src = r#"
        .module app exe
        .needed minilib
        .func main
            movi r0, 10
            movi r1, 0
            div r0, r1
            ret
    "#;
    let (_, exit) = load_and_run(src);
    assert!(matches!(exit, RunExit::Fault(f) if f.to_string().contains("division")));
}

#[test]
fn double_unlock_is_fatal() {
    let src = r#"
        .module app exe
        .needed minilib
        .func main
            movi r1, 7
            callsym my_lock
            movi r1, 7
            callsym my_unlock
            movi r1, 7
            callsym my_unlock    ; second unlock: fatal
            movi r0, 0
            ret
    "#;
    let (_, exit) = load_and_run(src);
    assert!(matches!(exit, RunExit::Fault(f) if f.to_string().contains("mutex")));
}

#[test]
fn abort_syscall_faults() {
    let src = r#"
        .module app exe
        .needed minilib
        .func main
            sys abort
            ret
    "#;
    let (_, exit) = load_and_run(src);
    assert!(matches!(exit, RunExit::Fault(f) if f.to_string().contains("abort")));
}

#[test]
fn unresolved_symbol_faults_only_when_called() {
    let src = r#"
        .module app exe
        .needed minilib
        .func main
            movi r1, 1
            cmpi r1, 1
            je skip
            callsym totally_missing
        skip:
            movi r0, 0
            ret
    "#;
    let (_, exit) = load_and_run(src);
    assert_eq!(exit, RunExit::Exited(0));

    let src2 = r#"
        .module app exe
        .needed minilib
        .func main
            callsym totally_missing
            movi r0, 0
            ret
    "#;
    let (_, exit2) = load_and_run(src2);
    assert!(matches!(exit2, RunExit::Fault(f) if f.to_string().contains("totally_missing")));
}

#[test]
fn green_threads_run_and_share_globals() {
    let src = r#"
        .module app exe
        .needed minilib
        .func main
            leafn r1, worker
            movi r2, 5
            sys thread_create
            leafn r1, worker
            movi r2, 6
            sys thread_create
            ; busy-wait until both workers added their contribution
        wait:
            leasym r9, counter
            ld r0, [r9+0]
            cmpi r0, 11
            jlt wait
            ret
        .func worker
            ; add the argument into the shared counter under a lock
            mov r10, r1
            movi r1, 1
            callsym my_lock
            leasym r9, counter
            ld r0, [r9+0]
            add r0, r10
            st [r9+0], r0
            movi r1, 1
            callsym my_unlock
            sys thread_exit
            ret
        .word counter 0
    "#;
    let (machine, exit) = load_and_run(src);
    assert_eq!(exit, RunExit::Exited(11));
    assert_eq!(machine.read_global("counter"), Some(11));
}

#[test]
fn budget_exhaustion_reports_budget() {
    let src = r#"
        .module app exe
        .needed minilib
        .func main
        spin:
            jmp spin
            ret
    "#;
    let lib = assemble_text(MINILIB).unwrap();
    let exe = assemble_text(src).unwrap();
    let mut loader = Loader::new();
    loader.add_library(lib);
    let image = loader.load(exe).unwrap();
    let mut machine = Machine::new(image, ProcessConfig::default());
    assert_eq!(machine.run(&mut NoHooks, 10_000), RunExit::Budget);
}

#[test]
fn coverage_records_executed_lines() {
    let src = r#"
        .module app exe
        .needed minilib
        .file "app.c"
        .func main
        .line 1
            movi r0, 1
        .line 2
            cmpi r0, 0
            je never
        .line 3
            movi r0, 0
            ret
        never:
        .line 4
            movi r0, 7
            ret
    "#;
    let lib = assemble_text(MINILIB).unwrap();
    let exe = assemble_text(src).unwrap();
    let mut loader = Loader::new();
    loader.add_library(lib);
    let image = loader.load(exe).unwrap();
    let module = image.executable().module.clone();
    let mut machine = Machine::new(
        image,
        ProcessConfig {
            record_coverage: true,
            ..ProcessConfig::default()
        },
    );
    let exit = machine.run_to_completion(&mut NoHooks);
    assert_eq!(exit, RunExit::Exited(0));
    let lines = machine.coverage.covered_lines(&module);
    let line_numbers: Vec<u32> = lines.iter().map(|(_, l)| *l).collect();
    assert!(line_numbers.contains(&1));
    assert!(line_numbers.contains(&3));
    assert!(
        !line_numbers.contains(&4),
        "dead branch must not be covered"
    );
}

/// An interposition handler that makes the n-th call to a function fail.
struct FailNth {
    func: String,
    fail_on: u64,
    seen: u64,
    retval: Word,
    errno: Word,
    observed_args: Vec<Vec<Word>>,
    observed_callers: Vec<Option<String>>,
}

impl HookHandler for FailNth {
    fn on_call(&mut self, func: &str, ctx: &mut CallContext<'_>) -> HookAction {
        if func != self.func {
            return HookAction::Forward;
        }
        self.seen += 1;
        self.observed_args.push(ctx.args(3));
        self.observed_callers.push(ctx.caller_function());
        if self.seen == self.fail_on {
            HookAction::Return {
                value: self.retval,
                errno: Some(self.errno),
            }
        } else {
            HookAction::Forward
        }
    }
}

#[test]
fn interposition_injects_error_and_errno() {
    // The app writes twice; the second write is made to fail with ENOSPC and
    // the app reports the errno it observed as its exit code.
    let src = r#"
        .module app exe
        .needed minilib
        .func main
            movi r1, 1
            leasym r2, msg
            movi r3, 3
            callsym my_write
            movi r1, 1
            leasym r2, msg
            movi r3, 3
            callsym my_write
            cmpi r0, -1
            jne ok
            tlsld r0, errno
            ret
        ok:
            movi r0, 0
            ret
        .string msg "abc"
    "#;
    let lib = assemble_text(MINILIB).unwrap();
    let exe = assemble_text(src).unwrap();
    let mut loader = Loader::new();
    loader.add_library(lib);
    loader.interpose("my_write");
    let image = loader.load(exe).unwrap();
    let mut machine = Machine::new(image, ProcessConfig::default());
    let mut handler = FailNth {
        func: "my_write".into(),
        fail_on: 2,
        seen: 0,
        retval: -1,
        errno: errno::ENOSPC,
        observed_args: Vec::new(),
        observed_callers: Vec::new(),
    };
    let exit = machine.run_to_completion(&mut handler);
    assert_eq!(exit, RunExit::Exited(errno::ENOSPC));
    // Only the first write reached the real function.
    assert_eq!(machine.output_string(), "abc");
    assert_eq!(handler.seen, 2);
    assert_eq!(handler.observed_args[0][0], 1, "fd argument visible");
    assert_eq!(handler.observed_args[0][2], 3, "length argument visible");
    assert_eq!(handler.observed_callers[0].as_deref(), Some("main"));
    assert_eq!(machine.stats.hooked_calls, 2);
}

#[test]
fn hooked_forward_behaves_like_normal_call() {
    let src = r#"
        .module app exe
        .needed minilib
        .func main
            movi r1, 1
            leasym r2, msg
            movi r3, 4
            callsym my_write
            movi r0, 0
            ret
        .string msg "pass"
    "#;
    let lib = assemble_text(MINILIB).unwrap();
    let exe = assemble_text(src).unwrap();
    let mut loader = Loader::new();
    loader.add_library(lib);
    loader.interpose("my_write");
    let image = loader.load(exe).unwrap();
    let mut machine = Machine::new(image, ProcessConfig::default());
    let exit = machine.run_to_completion(&mut NoHooks);
    assert_eq!(exit, RunExit::Exited(0));
    assert_eq!(machine.output_string(), "pass");
}

#[test]
fn sendto_and_recvfrom_roundtrip_through_simnet() {
    let src = r#"
        .module app exe
        .needed minilib
        .func main
            sys socket
            mov r10, r0
            mov r1, r10
            movi r2, 9000
            sys bind
            ; send a datagram to ourselves
            mov r1, r10
            leasym r2, msg
            movi r3, 4
            movi r4, 0          ; node 0 (ourselves)
            movi r5, 9000
            sys sendto
            ; receive it back
            mov r1, r10
            leasym r2, buf
            movi r3, 64
            movi r4, 0
            sys recvfrom
            ret
        .string msg "ping"
        .bss buf 64
    "#;
    let lib = assemble_text(MINILIB).unwrap();
    let exe = assemble_text(src).unwrap();
    let mut loader = Loader::new();
    loader.add_library(lib);
    let image = loader.load(exe).unwrap();
    let mut machine = Machine::new(image, ProcessConfig::default());
    machine.attach_net(lfi_vm::NetHandle::default());
    let exit = machine.run_to_completion(&mut NoHooks);
    assert_eq!(exit, RunExit::Exited(4));
}

#[test]
fn env_and_args_are_visible_via_getenv() {
    let src = r#"
        .module app exe
        .needed minilib
        .func main
            leasym r1, name
            leasym r2, buf
            movi r3, 64
            sys getenv
            ret
        .string name "MODE"
        .bss buf 64
    "#;
    let lib = assemble_text(MINILIB).unwrap();
    let exe = assemble_text(src).unwrap();
    let mut loader = Loader::new();
    loader.add_library(lib);
    let image = loader.load(exe).unwrap();
    let config = ProcessConfig {
        env: vec![("MODE".to_string(), "fast".to_string())],
        ..ProcessConfig::default()
    };
    let mut machine = Machine::new(image, config);
    let exit = machine.run_to_completion(&mut NoHooks);
    assert_eq!(exit, RunExit::Exited(4)); // strlen("fast")
}

#[test]
fn sbrk_grows_heap_until_limit() {
    let src = r#"
        .module app exe
        .needed minilib
        .func main
            movi r1, 4096
            sys sbrk
            cmpi r0, 0
            jlt fail
            movi r1, 100000000   ; far beyond the configured limit
            sys sbrk
            cmpi r0, 0
            jge fail
            neg r0               ; exit code = ENOMEM
            ret
        fail:
            movi r0, 99
            ret
    "#;
    let lib = assemble_text(MINILIB).unwrap();
    let exe = assemble_text(src).unwrap();
    let mut loader = Loader::new();
    loader.add_library(lib);
    let image = loader.load(exe).unwrap();
    let config = ProcessConfig {
        heap_limit: 1 << 20,
        ..ProcessConfig::default()
    };
    let mut machine = Machine::new(image, config);
    let exit = machine.run_to_completion(&mut NoHooks);
    assert_eq!(exit, RunExit::Exited(errno::ENOMEM));
}

#[test]
fn gettime_advances_with_work() {
    let src = r#"
        .module app exe
        .needed minilib
        .func main
            sys gettime
            mov r10, r0
            movi r11, 0
        loop:
            addi r11, 1
            cmpi r11, 1000
            jlt loop
            sys gettime
            sub r0, r10
            cmpi r0, 1000
            jge ok
            movi r0, 0
            ret
        ok:
            movi r0, 1
            ret
    "#;
    let (_, exit) = load_and_run(src);
    assert_eq!(exit, RunExit::Exited(1));
}

#[test]
fn syscall_with_unknown_number_faults() {
    let src = r#"
        .module app exe
        .needed minilib
        .func main
            sys 9999
            ret
    "#;
    let (_, exit) = load_and_run(src);
    assert!(matches!(exit, RunExit::Fault(f) if f.to_string().contains("bad syscall")));
}

#[test]
fn call_count_grows_only_for_hooked_calls() {
    let (machine, exit) = load_and_run(
        r#"
        .module app exe
        .needed minilib
        .func main
            movi r1, 1
            leasym r2, msg
            movi r3, 1
            callsym my_write
            movi r0, 0
            ret
        .string msg "x"
    "#,
    );
    assert_eq!(exit, RunExit::Exited(0));
    assert_eq!(machine.stats.hooked_calls, 0);
    assert!(machine.stats.calls >= 1);
    assert!(machine.stats.instructions > 0);
}

/// A handler that pauses at the first call to a function, then counts as
/// inert afterwards.
struct PauseAt {
    func: String,
    paused: bool,
}

impl HookHandler for PauseAt {
    fn on_call(&mut self, func: &str, _ctx: &mut CallContext<'_>) -> HookAction {
        if func == self.func && !self.paused {
            self.paused = true;
            return HookAction::Pause;
        }
        HookAction::Forward
    }
}

/// The snapshot-fork contract at the VM level: pausing at a hooked call,
/// snapshotting, and resuming the fork under an injecting handler must be
/// indistinguishable from running the injecting handler on a fresh machine
/// — same exit, same output, same clock, same architectural state.
#[test]
fn pause_snapshot_resume_matches_a_fresh_run() {
    let src = r#"
        .module app exe
        .needed minilib
        .func main
            movi r1, 1
            leasym r2, msg
            movi r3, 3
            callsym my_write
            movi r1, 1
            leasym r2, msg
            movi r3, 3
            callsym my_write
            cmpi r0, -1
            jne ok
            tlsld r0, errno
            ret
        ok:
            movi r0, 0
            ret
        .string msg "abc"
    "#;
    let lib = assemble_text(MINILIB).unwrap();
    let exe = assemble_text(src).unwrap();
    let mut loader = Loader::new();
    loader.add_library(lib);
    loader.interpose("my_write");
    let image = loader.load(exe).unwrap();

    let injector = || FailNth {
        func: "my_write".into(),
        fail_on: 2,
        seen: 0,
        retval: -1,
        errno: errno::ENOSPC,
        observed_args: Vec::new(),
        observed_callers: Vec::new(),
    };

    // Fresh reference run: the injecting handler sees both writes.
    let mut fresh = Machine::new(image.clone(), ProcessConfig::default());
    let mut fresh_handler = injector();
    let fresh_exit = fresh.run_to_completion(&mut fresh_handler);
    assert_eq!(fresh_exit, RunExit::Exited(errno::ENOSPC));

    // Paused run: stop before the first write executes...
    let mut prefix = Machine::new(image, ProcessConfig::default());
    let mut pause = PauseAt {
        func: "my_write".into(),
        paused: false,
    };
    let exit = prefix.run_to_completion(&mut pause);
    assert_eq!(exit, RunExit::Paused);
    assert_eq!(prefix.output_string(), "", "paused before the call ran");
    let snapshot = prefix.snapshot();

    // ...then fork and resume under the injector: it must observe the very
    // same two calls a fresh run observes.
    let mut fork = snapshot.fork();
    let mut fork_handler = injector();
    let fork_exit = fork.run_to_completion(&mut fork_handler);
    assert_eq!(fork_exit, fresh_exit);
    assert_eq!(fork_handler.seen, fresh_handler.seen);
    assert_eq!(fork.output_string(), fresh.output_string());
    assert_eq!(fork.clock(), fresh.clock());
    assert_eq!(fork.stats, fresh.stats);
    assert_eq!(fork.state_fingerprint(), fresh.state_fingerprint());

    // The snapshot is reusable: a second fork behaves identically.
    let mut again = snapshot.fork();
    let exit_again = again.run_to_completion(&mut injector());
    assert_eq!(exit_again, fresh_exit);
    assert_eq!(again.state_fingerprint(), fresh.state_fingerprint());
}
