//! Property tests for `Machine::snapshot` / `restore` / `fork`.
//!
//! The invariant: a snapshot captures the *complete* machine state. Taking
//! a snapshot at an arbitrary execution point, mutating the machine however
//! we like (more execution, filesystem writes, environment changes), and
//! restoring must round-trip to byte-identical state — and a fork taken
//! from the snapshot must behave exactly like the restored original from
//! there on.

use lfi_asm::assemble_text;
use lfi_vm::{
    CallContext, HookAction, HookHandler, Loader, Machine, NoHooks, ProcessConfig, RunExit,
};
use proptest::prelude::*;

const MINILIB: &str = r#"
    .module minilib lib
    .file "minilib.s"

    .func my_open
        movi r0, 0
        sys open
        ret

    .func my_write
        sys write
        ret

    .func my_sbrk
        sys sbrk
        ret
"#;

/// A program that keeps mutating observable state: grows the heap, stores
/// a counter into heap and BSS memory, appends to a file, and writes to
/// stdout — so two machines at different execution points always differ.
const APP: &str = r#"
    .module app exe
    .needed minilib
    .func main
        movi r1, 4096
        callsym my_sbrk
        mov r9, r0            ; heap base
        leasym r1, path
        movi r2, 73           ; CREAT|WRONLY|APPEND (value irrelevant to sim)
        movi r3, 0
        callsym my_open
        mov r8, r0            ; file fd
        movi r10, 0           ; counter
        movi r11, 150         ; iterations
    loop:
        cmp r10, r11
        jge done
        st [r9+0], r10        ; heap write
        leasym r4, buf
        st [r4+8], r10        ; bss write
        mov r1, r8
        leasym r2, msg
        movi r3, 2
        callsym my_write      ; file append
        movi r1, 1
        leasym r2, msg
        movi r3, 1
        callsym my_write      ; stdout
        addi r10, 1
        jmp loop
    done:
        movi r0, 0
        ret
    .string path "/log.txt"
    .string msg "ab"
    .bss buf 64
"#;

fn build_machine() -> Machine {
    let lib = assemble_text(MINILIB).expect("assemble minilib");
    let exe = assemble_text(APP).expect("assemble app");
    let mut loader = Loader::new();
    loader.add_library(lib);
    let image = loader.load(exe).expect("load");
    let mut machine = Machine::new(
        image,
        ProcessConfig {
            record_coverage: true,
            ..ProcessConfig::default()
        },
    );
    machine.fs_mut().write_file("/log.txt", b"").unwrap();
    machine
}

/// Like [`build_machine`], but with every library function interposed —
/// the session-image configuration, where pausing at injectable calls is
/// possible. Both lanes of the depth property use this image: the
/// fingerprint covers hook statistics, so interposition must match.
fn build_interposed_machine() -> Machine {
    let lib = assemble_text(MINILIB).expect("assemble minilib");
    let exe = assemble_text(APP).expect("assemble app");
    let mut loader = Loader::new();
    loader.add_library(lib);
    loader.interpose_all(["my_open", "my_write", "my_sbrk"].map(String::from));
    let image = loader.load(exe).expect("load");
    let mut machine = Machine::new(
        image,
        ProcessConfig {
            record_coverage: true,
            ..ProcessConfig::default()
        },
    );
    machine.fs_mut().write_file("/log.txt", b"").unwrap();
    machine
}

/// Pauses before the `k`-th intercepted call, forwarding the first `k-1` —
/// the depth-`k` pause point session trees snapshot at.
struct PauseAtNth {
    remaining: u64,
}

impl HookHandler for PauseAtNth {
    fn on_call(&mut self, _func: &str, _ctx: &mut CallContext<'_>) -> HookAction {
        if self.remaining <= 1 {
            HookAction::Pause
        } else {
            self.remaining -= 1;
            HookAction::Forward
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_then_mutate_then_restore_roundtrips(
        prefix in 0u64..6000,
        mutation in 1u64..6000,
        scribble in any::<u64>(),
    ) {
        let mut machine = build_machine();
        machine.run(&mut NoHooks, prefix);
        let fingerprint = machine.state_fingerprint();
        let snapshot = machine.snapshot();

        // A fork of the snapshot is byte-identical to the machine.
        prop_assert_eq!(snapshot.fork().state_fingerprint(), fingerprint);

        // Mutate the machine: run further, scribble on the filesystem and
        // environment. The fingerprint must move (the fs write alone
        // guarantees it).
        machine.run(&mut NoHooks, mutation);
        machine
            .fs_mut()
            .write_file("/scratch", &scribble.to_le_bytes())
            .unwrap();
        machine.set_env("SCRIBBLE", &scribble.to_string());
        prop_assert_ne!(machine.state_fingerprint(), fingerprint);

        // Restore: byte-identical again (mem, regs, fs, coverage, output).
        machine.restore(&snapshot);
        prop_assert_eq!(machine.state_fingerprint(), fingerprint);
    }

    #[test]
    fn restored_and_forked_machines_continue_identically(
        prefix in 0u64..6000,
        detour in 1u64..3000,
    ) {
        let mut machine = build_machine();
        machine.run(&mut NoHooks, prefix);
        let snapshot = machine.snapshot();
        let mut fork = snapshot.fork();

        // Drive the original down a detour, then restore it.
        machine.run(&mut NoHooks, detour);
        machine.restore(&snapshot);

        // Both continue to completion with identical observable behavior.
        let exit_restored = machine.run_to_completion(&mut NoHooks);
        let exit_forked = fork.run_to_completion(&mut NoHooks);
        prop_assert_eq!(exit_restored, exit_forked);
        prop_assert_eq!(machine.state_fingerprint(), fork.state_fingerprint());
        prop_assert_eq!(machine.output_string(), fork.output_string());
        prop_assert_eq!(
            machine.fs().read_file("/log.txt").unwrap(),
            fork.fs().read_file("/log.txt").unwrap()
        );
    }

    /// The snapshot-tree invariant: for an arbitrary injectable-call depth
    /// `k`, pausing before the `k`-th intercepted call, snapshotting,
    /// forking, and running the fork to the end is byte-identical to an
    /// uninterrupted run of the same image — state fingerprint, exit,
    /// output, all of it. The app makes ~302 intercepted calls, so the
    /// range also exercises `k` past the end (no pause: the run itself
    /// must match).
    #[test]
    fn forking_at_any_call_depth_matches_an_uninterrupted_run(
        k in 1u64..320,
    ) {
        let mut fresh = build_interposed_machine();
        let fresh_exit = fresh.run_to_completion(&mut NoHooks);

        let mut machine = build_interposed_machine();
        let exit = machine.run_to_completion(&mut PauseAtNth { remaining: k });
        match exit {
            RunExit::Paused => {
                let snapshot = machine.snapshot();
                let mut fork = snapshot.fork();
                let fork_exit = fork.run_to_completion(&mut NoHooks);
                prop_assert_eq!(fork_exit, fresh_exit);
                prop_assert_eq!(fork.state_fingerprint(), fresh.state_fingerprint());
                prop_assert_eq!(fork.output_string(), fresh.output_string());
                prop_assert_eq!(
                    fork.fs().read_file("/log.txt").unwrap(),
                    fresh.fs().read_file("/log.txt").unwrap()
                );
            }
            other => {
                // Depth beyond the last intercepted call: no pause point
                // exists and the run completed on its own.
                prop_assert_eq!(other, fresh_exit);
                prop_assert_eq!(machine.state_fingerprint(), fresh.state_fingerprint());
            }
        }
    }
}
