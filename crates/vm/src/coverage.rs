//! Execution coverage accounting.
//!
//! The VM records which instruction offsets of which module have executed;
//! together with the modules' line tables this yields line coverage, the
//! measure Table 3 of the paper reports (via gcov/lcov there). The
//! recovery-code *classification* lives in the analyzer; this module only
//! counts what ran.

use std::collections::{BTreeMap, BTreeSet};

/// Coverage data for one process run (or accumulated over several runs).
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    /// For each module name, the set of executed instruction offsets.
    executed: BTreeMap<String, BTreeSet<u64>>,
}

impl Coverage {
    /// Create an empty coverage record.
    pub fn new() -> Coverage {
        Coverage::default()
    }

    /// Record that the instruction at `offset` of `module` executed.
    pub fn record(&mut self, module: &str, offset: u64) {
        // The common case is a re-execution of an already-seen offset; avoid
        // allocating the module key every time.
        if let Some(set) = self.executed.get_mut(module) {
            set.insert(offset);
        } else {
            self.executed
                .entry(module.to_string())
                .or_default()
                .insert(offset);
        }
    }

    /// The set of executed offsets for a module.
    pub fn executed_offsets(&self, module: &str) -> BTreeSet<u64> {
        self.executed.get(module).cloned().unwrap_or_default()
    }

    /// Whether a particular offset of a module executed.
    pub fn offset_executed(&self, module: &str, offset: u64) -> bool {
        self.executed
            .get(module)
            .is_some_and(|set| set.contains(&offset))
    }

    /// Number of distinct instructions executed in a module.
    pub fn count(&self, module: &str) -> usize {
        self.executed.get(module).map_or(0, |s| s.len())
    }

    /// Names of all modules with at least one executed instruction.
    pub fn modules(&self) -> Vec<String> {
        self.executed.keys().cloned().collect()
    }

    /// Merge another coverage record into this one (e.g. accumulate a test
    /// suite made of many process runs, as the paper does for Table 3).
    pub fn merge(&mut self, other: &Coverage) {
        for (module, offsets) in &other.executed {
            self.executed
                .entry(module.clone())
                .or_default()
                .extend(offsets.iter().copied());
        }
    }

    /// A stable FNV-1a digest of the full coverage record (module names and
    /// executed offsets, in order). Used to assert snapshot/restore
    /// round-trips are byte-identical.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for byte in bytes {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for (module, offsets) in &self.executed {
            mix(module.as_bytes());
            for offset in offsets {
                mix(&offset.to_le_bytes());
            }
            mix(&[0xff]);
        }
        hash
    }

    /// Translate offset coverage into line coverage for a module, given its
    /// line table. Returns the set of `(file, line)` pairs executed.
    pub fn covered_lines(&self, module: &lfi_obj::Module) -> BTreeSet<(String, u32)> {
        let mut lines = BTreeSet::new();
        if let Some(offsets) = self.executed.get(&module.name) {
            for &off in offsets {
                if let Some((file, line)) = module.line_for_offset(off) {
                    lines.insert((file.to_string(), line));
                }
            }
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use lfi_arch::{Insn, Reg, INSN_SIZE};
    use lfi_obj::{Export, LineEntry, Module, ModuleKind, SymKind};

    use super::*;

    fn module_with_lines() -> Module {
        let mut m = Module::new("app", ModuleKind::Executable);
        for _ in 0..4 {
            m.code.extend_from_slice(
                &Insn::MovI {
                    dst: Reg::R(0),
                    imm: 0,
                }
                .encode(),
            );
        }
        m.code.extend_from_slice(&Insn::Ret.encode());
        m.exports.push(Export {
            name: "main".into(),
            kind: SymKind::Func,
            offset: 0,
            size: m.code.len() as u64,
        });
        m.files.push("app.c".into());
        m.line_table = vec![
            LineEntry {
                code_offset: 0,
                file: 0,
                line: 1,
            },
            LineEntry {
                code_offset: 2 * INSN_SIZE,
                file: 0,
                line: 2,
            },
            LineEntry {
                code_offset: 4 * INSN_SIZE,
                file: 0,
                line: 3,
            },
        ];
        m
    }

    #[test]
    fn records_and_counts_offsets() {
        let mut cov = Coverage::new();
        cov.record("app", 0);
        cov.record("app", 0);
        cov.record("app", 12);
        assert_eq!(cov.count("app"), 2);
        assert!(cov.offset_executed("app", 12));
        assert!(!cov.offset_executed("app", 24));
        assert_eq!(cov.count("other"), 0);
        assert_eq!(cov.modules(), vec!["app".to_string()]);
    }

    #[test]
    fn merge_accumulates_runs() {
        let mut a = Coverage::new();
        a.record("app", 0);
        let mut b = Coverage::new();
        b.record("app", 12);
        b.record("lib", 0);
        a.merge(&b);
        assert_eq!(a.count("app"), 2);
        assert_eq!(a.count("lib"), 1);
    }

    #[test]
    fn line_coverage_uses_the_line_table() {
        let module = module_with_lines();
        let mut cov = Coverage::new();
        cov.record("app", 0);
        cov.record("app", INSN_SIZE);
        cov.record("app", 2 * INSN_SIZE);
        let lines = cov.covered_lines(&module);
        assert!(lines.contains(&("app.c".to_string(), 1)));
        assert!(lines.contains(&("app.c".to_string(), 2)));
        assert!(!lines.contains(&("app.c".to_string(), 3)));
    }
}
