//! Loader and dynamic linker.
//!
//! The loader assembles an executable and its shared libraries into an
//! [`Image`]: every module gets a code and a data base address, every symbol
//! reference is resolved following the preload-aware search order, and data
//! relocations are prepared. Interposition works exactly like the paper's
//! LD_PRELOAD shims: function names registered with [`Loader::interpose`]
//! resolve to a *hook* instead of the original definition, and the hook
//! carries the original address so the LFI runtime can fall through to it
//! when it decides not to inject.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

use lfi_arch::{decode_all, Addr, Insn};
use lfi_obj::{Module, ModuleKind, SymKind};

use crate::mem::PAGE_SIZE;

/// Spacing between module base addresses.
const MODULE_SPACING: Addr = 0x0100_0000;
/// Base address of the first module.
const FIRST_MODULE_BASE: Addr = 0x1000_0000;

/// A module mapped into an image.
#[derive(Debug, Clone)]
pub struct LoadedModule {
    /// The module contents.
    pub module: Module,
    /// Position in the image's module list.
    pub index: usize,
    /// Virtual address of the first instruction.
    pub code_base: Addr,
    /// Virtual address of the start of the data section (BSS follows it).
    pub data_base: Addr,
    /// Predecoded instructions (index = offset / INSN_SIZE).
    pub insns: Vec<Insn>,
}

impl LoadedModule {
    /// Total size of the data + BSS region.
    pub fn data_size(&self) -> u64 {
        self.module.data.len() as u64 + self.module.bss_size
    }

    /// Virtual address of a code offset.
    pub fn code_addr(&self, offset: u64) -> Addr {
        self.code_base + offset
    }

    /// Whether a virtual address falls inside this module's code range.
    pub fn contains_code(&self, addr: Addr) -> bool {
        addr >= self.code_base && addr < self.code_base + self.module.code.len() as u64
    }
}

/// How one symbol reference of one module resolves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// A function definition at an absolute address.
    Func { addr: Addr },
    /// A data object at an absolute address.
    Data { addr: Addr },
    /// A thread-local variable, accessed by name in the per-thread TLS map.
    Tls { name: String },
    /// An interposed function: calls are redirected to the LFI runtime hook;
    /// `original` is the address of the definition that would have been used
    /// without interposition (if any), so the hook can forward to it.
    Hooked {
        /// Function name, as appearing in the injection scenario.
        name: String,
        /// The non-interposed resolution, if the symbol is defined anywhere.
        original: Option<Addr>,
    },
    /// No definition was found; calling or taking the address of this symbol
    /// faults at run time.
    Unresolved { name: String },
}

/// A fully loaded and resolved program image.
#[derive(Debug, Clone)]
pub struct Image {
    /// Modules in load order: executable first, then libraries.
    pub modules: Vec<LoadedModule>,
    /// Per-module, per-symref resolutions.
    resolutions: Vec<Vec<Resolution>>,
    /// Address of `main` in the executable.
    pub entry: Addr,
}

impl Image {
    /// Resolution of symref `sym` of module `module_index`.
    pub fn resolution(&self, module_index: usize, sym: u32) -> &Resolution {
        &self.resolutions[module_index][sym as usize]
    }

    /// The module whose code range contains `addr`, with the offset inside it.
    pub fn find_code(&self, addr: Addr) -> Option<(usize, u64)> {
        self.modules
            .iter()
            .find(|m| m.contains_code(addr))
            .map(|m| (m.index, addr - m.code_base))
    }

    /// Address of a function export, searching the usual symbol order.
    pub fn func_addr(&self, name: &str) -> Option<Addr> {
        self.modules
            .iter()
            .find_map(|m| m.module.func_export(name).map(|e| m.code_base + e.offset))
    }

    /// Address of a data export, searching the usual symbol order.
    pub fn data_addr(&self, name: &str) -> Option<Addr> {
        self.modules.iter().find_map(|m| {
            m.module
                .export(name, SymKind::Data)
                .map(|e| m.data_base + e.offset)
        })
    }

    /// Name of the function containing a code address, if known.
    pub fn func_name_at(&self, addr: Addr) -> Option<(&str, &str)> {
        let (idx, off) = self.find_code(addr)?;
        let module = &self.modules[idx];
        let export = module.module.containing_function(off)?;
        Some((module.module.name.as_str(), export.name.as_str()))
    }

    /// The executable module (always index 0).
    pub fn executable(&self) -> &LoadedModule {
        &self.modules[0]
    }

    /// Look up a loaded module by name.
    pub fn module_by_name(&self, name: &str) -> Option<&LoadedModule> {
        self.modules.iter().find(|m| m.module.name == name)
    }
}

/// Errors reported while loading an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// A needed library was not registered with the loader.
    MissingLibrary {
        /// The missing library name.
        name: String,
        /// The module that needed it.
        needed_by: String,
    },
    /// A module failed structural validation.
    InvalidModule {
        /// Module name.
        name: String,
        /// Human-readable validation problems.
        problems: Vec<String>,
    },
    /// The executable does not define `main`.
    NoEntryPoint,
    /// Two loaded modules share a name.
    DuplicateModule(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::MissingLibrary { name, needed_by } => {
                write!(f, "library `{name}` (needed by `{needed_by}`) not found")
            }
            LoadError::InvalidModule { name, problems } => {
                write!(f, "module `{name}` is invalid: {}", problems.join("; "))
            }
            LoadError::NoEntryPoint => write!(f, "executable does not export `main`"),
            LoadError::DuplicateModule(name) => write!(f, "duplicate module `{name}`"),
        }
    }
}

impl std::error::Error for LoadError {}

/// The dynamic loader. Register libraries and interposed names, then load an
/// executable into an [`Image`].
#[derive(Debug, Clone, Default)]
pub struct Loader {
    libraries: Vec<Module>,
    preload: Vec<Module>,
    interpose: HashSet<String>,
}

impl Loader {
    /// Create an empty loader.
    pub fn new() -> Loader {
        Loader::default()
    }

    /// Register a shared library that `needed` declarations can refer to.
    pub fn add_library(&mut self, module: Module) -> &mut Self {
        self.libraries.push(module);
        self
    }

    /// Register a preloaded library whose exports take precedence over the
    /// regular libraries (the LD_PRELOAD slot). Rarely needed directly —
    /// the LFI runtime uses [`Loader::interpose`] hooks instead — but kept to
    /// mirror the mechanism described in the paper.
    pub fn add_preload(&mut self, module: Module) -> &mut Self {
        self.preload.push(module);
        self
    }

    /// Interpose on a function name: calls through symbol references to this
    /// name will be routed to the [`crate::HookHandler`] at run time.
    pub fn interpose(&mut self, name: impl Into<String>) -> &mut Self {
        self.interpose.insert(name.into());
        self
    }

    /// Interpose on several function names.
    pub fn interpose_all<I, S>(&mut self, names: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for name in names {
            self.interpose(name);
        }
        self
    }

    /// The set of currently interposed names.
    pub fn interposed(&self) -> Vec<String> {
        let mut v: Vec<String> = self.interpose.iter().cloned().collect();
        v.sort();
        v
    }

    /// Load an executable, pulling in preloads and needed libraries, and
    /// resolve every symbol reference.
    pub fn load(&self, exe: Module) -> Result<Image, LoadError> {
        if exe.kind != ModuleKind::Executable || exe.func_export("main").is_none() {
            return Err(LoadError::NoEntryPoint);
        }

        // Assemble the module list: executable, preloads, then needed
        // libraries discovered breadth-first.
        let mut ordered: Vec<Module> = Vec::new();
        let mut seen: HashSet<String> = HashSet::new();
        let mut queue: VecDeque<Module> = VecDeque::new();
        queue.push_back(exe);
        for p in &self.preload {
            queue.push_back(p.clone());
        }
        while let Some(module) = queue.pop_front() {
            if !seen.insert(module.name.clone()) {
                continue;
            }
            for needed in &module.needed {
                if seen.contains(needed) {
                    continue;
                }
                let found = self
                    .libraries
                    .iter()
                    .find(|l| &l.name == needed)
                    .cloned()
                    .ok_or_else(|| LoadError::MissingLibrary {
                        name: needed.clone(),
                        needed_by: module.name.clone(),
                    })?;
                queue.push_back(found);
            }
            ordered.push(module);
        }

        // Validate and lay out modules.
        let mut loaded = Vec::with_capacity(ordered.len());
        for (index, module) in ordered.into_iter().enumerate() {
            if let Err(problems) = module.validate() {
                return Err(LoadError::InvalidModule {
                    name: module.name.clone(),
                    problems: problems.iter().map(|p| p.to_string()).collect(),
                });
            }
            let code_base = FIRST_MODULE_BASE + index as Addr * MODULE_SPACING;
            let code_len = module.code.len() as u64;
            let data_base = code_base + code_len.div_ceil(PAGE_SIZE).max(1) * PAGE_SIZE;
            let (insn_pairs, decode_err) = decode_all(&module.code);
            debug_assert!(decode_err.is_none(), "validated module failed to decode");
            let insns = insn_pairs.into_iter().map(|(_, i)| i).collect();
            loaded.push(LoadedModule {
                module,
                index,
                code_base,
                data_base,
                insns,
            });
        }

        // Global export maps. Search order for cross-module resolution:
        // preloads first (they sit right after the executable in the list but
        // take precedence for *function* symbols, which is what LD_PRELOAD
        // does), then the executable, then libraries in load order. For
        // simplicity — and because our executables never export library
        // function names — "first definition in load order, with preloads
        // promoted" collapses to scanning preloads, then load order.
        let preload_names: HashSet<&str> = self.preload.iter().map(|m| m.name.as_str()).collect();
        let mut func_map: HashMap<String, Addr> = HashMap::new();
        let mut data_map: HashMap<String, Addr> = HashMap::new();
        let mut scan_order: Vec<&LoadedModule> = Vec::with_capacity(loaded.len());
        scan_order.extend(
            loaded
                .iter()
                .filter(|m| preload_names.contains(m.module.name.as_str())),
        );
        scan_order.extend(
            loaded
                .iter()
                .filter(|m| !preload_names.contains(m.module.name.as_str())),
        );
        for lm in &scan_order {
            for export in &lm.module.exports {
                match export.kind {
                    SymKind::Func => {
                        func_map
                            .entry(export.name.clone())
                            .or_insert(lm.code_base + export.offset);
                    }
                    SymKind::Data => {
                        data_map
                            .entry(export.name.clone())
                            .or_insert(lm.data_base + export.offset);
                    }
                    SymKind::Tls => {}
                }
            }
        }

        // Resolve symbol references per module.
        let mut resolutions = Vec::with_capacity(loaded.len());
        for lm in &loaded {
            let mut module_res = Vec::with_capacity(lm.module.symrefs.len());
            for symref in &lm.module.symrefs {
                let res = match symref.kind {
                    SymKind::Tls => Resolution::Tls {
                        name: symref.name.clone(),
                    },
                    SymKind::Data => {
                        // A module's own definition wins for its own data refs.
                        let own = lm
                            .module
                            .export(&symref.name, SymKind::Data)
                            .map(|e| lm.data_base + e.offset);
                        match own.or_else(|| data_map.get(&symref.name).copied()) {
                            Some(addr) => Resolution::Data { addr },
                            None => Resolution::Unresolved {
                                name: symref.name.clone(),
                            },
                        }
                    }
                    SymKind::Func => {
                        let original = func_map.get(&symref.name).copied();
                        if self.interpose.contains(&symref.name) {
                            Resolution::Hooked {
                                name: symref.name.clone(),
                                original,
                            }
                        } else {
                            match original {
                                Some(addr) => Resolution::Func { addr },
                                None => Resolution::Unresolved {
                                    name: symref.name.clone(),
                                },
                            }
                        }
                    }
                };
                module_res.push(res);
            }
            resolutions.push(module_res);
        }

        let entry = loaded[0]
            .module
            .func_export("main")
            .map(|e| loaded[0].code_base + e.offset)
            .ok_or(LoadError::NoEntryPoint)?;

        Ok(Image {
            modules: loaded,
            resolutions,
            entry,
        })
    }
}

#[cfg(test)]
mod tests {
    use lfi_arch::INSN_SIZE;
    use lfi_obj::{Export, SymRef};

    use super::*;

    fn lib_with_func(name: &str, func: &str) -> Module {
        let mut m = Module::new(name, ModuleKind::SharedLib);
        m.code.extend_from_slice(&Insn::Ret.encode());
        m.exports.push(Export {
            name: func.into(),
            kind: SymKind::Func,
            offset: 0,
            size: INSN_SIZE,
        });
        m
    }

    fn exe_calling(func: &str, needed: &[&str]) -> Module {
        let mut m = Module::new("app", ModuleKind::Executable);
        m.needed = needed.iter().map(|s| s.to_string()).collect();
        m.symrefs.push(SymRef::func(func));
        m.code.extend_from_slice(&Insn::CallSym { sym: 0 }.encode());
        m.code.extend_from_slice(&Insn::Ret.encode());
        m.exports.push(Export {
            name: "main".into(),
            kind: SymKind::Func,
            offset: 0,
            size: 2 * INSN_SIZE,
        });
        m
    }

    #[test]
    fn loads_executable_with_needed_library() {
        let mut loader = Loader::new();
        loader.add_library(lib_with_func("libc", "read"));
        let image = loader.load(exe_calling("read", &["libc"])).expect("load");
        assert_eq!(image.modules.len(), 2);
        assert_eq!(image.modules[0].module.name, "app");
        assert_eq!(image.modules[1].module.name, "libc");
        let read_addr = image.func_addr("read").unwrap();
        assert_eq!(
            image.resolution(0, 0),
            &Resolution::Func { addr: read_addr }
        );
        assert_eq!(image.entry, image.modules[0].code_base);
    }

    #[test]
    fn missing_library_is_reported() {
        let loader = Loader::new();
        let err = loader.load(exe_calling("read", &["libc"])).unwrap_err();
        assert_eq!(
            err,
            LoadError::MissingLibrary {
                name: "libc".into(),
                needed_by: "app".into()
            }
        );
    }

    #[test]
    fn unresolved_symbols_are_tolerated_until_called() {
        let loader = Loader::new();
        let image = loader.load(exe_calling("mystery", &[])).expect("load");
        assert_eq!(
            image.resolution(0, 0),
            &Resolution::Unresolved {
                name: "mystery".into()
            }
        );
    }

    #[test]
    fn interposed_functions_resolve_to_hooks_with_originals() {
        let mut loader = Loader::new();
        loader.add_library(lib_with_func("libc", "read"));
        loader.interpose("read");
        let image = loader.load(exe_calling("read", &["libc"])).expect("load");
        let read_addr = image.func_addr("read").unwrap();
        assert_eq!(
            image.resolution(0, 0),
            &Resolution::Hooked {
                name: "read".into(),
                original: Some(read_addr)
            }
        );
    }

    #[test]
    fn interposition_applies_to_library_to_library_calls_too() {
        // libssl calls read from libc; interposing read must catch that call
        // as well, as LD_PRELOAD does.
        let mut libssl = Module::new("libssl", ModuleKind::SharedLib);
        libssl.needed.push("libc".into());
        libssl.symrefs.push(SymRef::func("read"));
        libssl
            .code
            .extend_from_slice(&Insn::CallSym { sym: 0 }.encode());
        libssl.code.extend_from_slice(&Insn::Ret.encode());
        libssl.exports.push(Export {
            name: "ssl_read".into(),
            kind: SymKind::Func,
            offset: 0,
            size: 2 * INSN_SIZE,
        });

        let mut loader = Loader::new();
        loader.add_library(lib_with_func("libc", "read"));
        loader.add_library(libssl);
        loader.interpose("read");

        let mut exe = exe_calling("ssl_read", &["libssl"]);
        exe.needed.push("libc".into());
        let image = loader.load(exe).expect("load");
        let ssl_index = image.module_by_name("libssl").unwrap().index;
        assert!(matches!(
            image.resolution(ssl_index, 0),
            Resolution::Hooked { .. }
        ));
    }

    #[test]
    fn transitive_needed_libraries_are_loaded_once() {
        let mut liba = lib_with_func("liba", "fa");
        liba.needed.push("libc".into());
        let mut libb = lib_with_func("libb", "fb");
        libb.needed.push("libc".into());
        let mut loader = Loader::new();
        loader.add_library(liba);
        loader.add_library(libb);
        loader.add_library(lib_with_func("libc", "read"));
        let mut exe = exe_calling("fa", &["liba", "libb"]);
        exe.symrefs.push(SymRef::func("fb"));
        let image = loader.load(exe).expect("load");
        assert_eq!(image.modules.len(), 4);
        let names: Vec<_> = image
            .modules
            .iter()
            .map(|m| m.module.name.clone())
            .collect();
        assert_eq!(names, vec!["app", "liba", "libb", "libc"]);
    }

    #[test]
    fn rejects_executable_without_main() {
        let loader = Loader::new();
        let lib = lib_with_func("libc", "read");
        assert!(matches!(loader.load(lib), Err(LoadError::NoEntryPoint)));
    }

    #[test]
    fn find_code_and_func_name_lookup() {
        let mut loader = Loader::new();
        loader.add_library(lib_with_func("libc", "read"));
        let image = loader.load(exe_calling("read", &["libc"])).expect("load");
        let (idx, off) = image.find_code(image.entry + INSN_SIZE).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(off, INSN_SIZE);
        assert_eq!(
            image.func_name_at(image.entry + INSN_SIZE),
            Some(("app", "main"))
        );
        assert_eq!(image.find_code(0xdead_beef), None);
    }
}
