//! Simulated datagram network shared by several machines.
//!
//! The paper's distributed experiments (PBFT, §7.1 and §7.3, Figure 3) inject
//! faults into `sendto`/`recvfrom` at the library boundary; the network
//! itself only needs to move datagrams between simulated processes. The
//! network is therefore reliable and ordered by default — all message loss in
//! the experiments comes from LFI's injections, as in the paper — but a
//! drop probability can be configured for studies that want an unreliable
//! substrate independent of LFI.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A datagram in flight or queued at a destination port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Sending node id.
    pub from_node: i64,
    /// Sending port (0 when unknown).
    pub from_port: i64,
    /// Destination node id.
    pub to_node: i64,
    /// Destination port.
    pub to_port: i64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Statistics kept by the network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Datagrams accepted from senders.
    pub sent: u64,
    /// Datagrams delivered into a destination queue.
    pub delivered: u64,
    /// Datagrams dropped by the configured loss probability.
    pub dropped: u64,
    /// Datagrams addressed to a node/port nobody bound.
    pub unroutable: u64,
}

/// The shared datagram network.
///
/// `SimNet` is `Clone` so machine snapshots can capture the network state
/// by value: a clone is a fully independent network with the same bound
/// endpoints, queued datagrams, RNG state and statistics.
#[derive(Debug, Clone)]
pub struct SimNet {
    queues: HashMap<(i64, i64), VecDeque<Datagram>>,
    drop_probability: f64,
    rng: StdRng,
    stats: NetStats,
}

impl SimNet {
    /// Create a reliable network (no drops) with a deterministic RNG seed.
    pub fn new(seed: u64) -> SimNet {
        SimNet {
            queues: HashMap::new(),
            drop_probability: 0.0,
            rng: StdRng::seed_from_u64(seed),
            stats: NetStats::default(),
        }
    }

    /// Configure the probability that the network itself drops a datagram.
    pub fn set_drop_probability(&mut self, p: f64) {
        self.drop_probability = p.clamp(0.0, 1.0);
    }

    /// Bind a (node, port) endpoint so datagrams can be queued for it.
    pub fn bind(&mut self, node: i64, port: i64) {
        self.queues.entry((node, port)).or_default();
    }

    /// Whether a (node, port) endpoint is bound.
    pub fn is_bound(&self, node: i64, port: i64) -> bool {
        self.queues.contains_key(&(node, port))
    }

    /// Send a datagram. Returns `true` if it was delivered to a queue.
    pub fn send(&mut self, datagram: Datagram) -> bool {
        self.stats.sent += 1;
        if self.drop_probability > 0.0 && self.rng.gen_bool(self.drop_probability) {
            self.stats.dropped += 1;
            return false;
        }
        match self.queues.get_mut(&(datagram.to_node, datagram.to_port)) {
            Some(queue) => {
                queue.push_back(datagram);
                self.stats.delivered += 1;
                true
            }
            None => {
                self.stats.unroutable += 1;
                false
            }
        }
    }

    /// Dequeue the next datagram for a (node, port), if any.
    pub fn recv(&mut self, node: i64, port: i64) -> Option<Datagram> {
        self.queues.get_mut(&(node, port))?.pop_front()
    }

    /// Number of datagrams currently queued for a (node, port).
    pub fn pending(&self, node: i64, port: i64) -> usize {
        self.queues.get(&(node, port)).map_or(0, |q| q.len())
    }

    /// Network statistics.
    pub fn stats(&self) -> NetStats {
        self.stats
    }
}

/// A cloneable handle to a shared [`SimNet`], held by each machine attached
/// to the network and by the test harness (which can inject workload traffic
/// directly, playing the role of an external client).
#[derive(Debug, Clone)]
pub struct NetHandle {
    inner: Arc<Mutex<SimNet>>,
}

impl NetHandle {
    /// Wrap a network in a shareable handle.
    pub fn new(net: SimNet) -> NetHandle {
        NetHandle {
            inner: Arc::new(Mutex::new(net)),
        }
    }

    /// Run a closure with exclusive access to the network.
    pub fn with<R>(&self, f: impl FnOnce(&mut SimNet) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Convenience: send a datagram.
    pub fn send(&self, datagram: Datagram) -> bool {
        self.with(|net| net.send(datagram))
    }

    /// Convenience: receive the next datagram for an endpoint.
    pub fn recv(&self, node: i64, port: i64) -> Option<Datagram> {
        self.with(|net| net.recv(node, port))
    }

    /// Convenience: bind an endpoint.
    pub fn bind(&self, node: i64, port: i64) {
        self.with(|net| net.bind(node, port));
    }

    /// Convenience: queued datagram count for an endpoint.
    pub fn pending(&self, node: i64, port: i64) -> usize {
        self.with(|net| net.pending(node, port))
    }

    /// Deep-copy the network into a new, independent handle. Unlike
    /// [`Clone`], which shares the underlying network, the forked handle has
    /// its own copy of every queue — sends and receives on one side are
    /// invisible to the other. Machine snapshots use this to capture the
    /// network state at the snapshot point.
    pub fn fork(&self) -> NetHandle {
        NetHandle::new(self.with(|net| net.clone()))
    }
}

impl Default for NetHandle {
    fn default() -> Self {
        NetHandle::new(SimNet::new(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dgram(from: i64, to: i64, port: i64, payload: &[u8]) -> Datagram {
        Datagram {
            from_node: from,
            from_port: 0,
            to_node: to,
            to_port: port,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn send_and_receive_in_order() {
        let mut net = SimNet::new(1);
        net.bind(1, 53);
        assert!(net.send(dgram(0, 1, 53, b"a")));
        assert!(net.send(dgram(0, 1, 53, b"b")));
        assert_eq!(net.pending(1, 53), 2);
        assert_eq!(net.recv(1, 53).unwrap().payload, b"a");
        assert_eq!(net.recv(1, 53).unwrap().payload, b"b");
        assert!(net.recv(1, 53).is_none());
    }

    #[test]
    fn unroutable_messages_are_counted() {
        let mut net = SimNet::new(1);
        assert!(!net.send(dgram(0, 9, 99, b"x")));
        assert_eq!(net.stats().unroutable, 1);
        assert_eq!(net.stats().delivered, 0);
    }

    #[test]
    fn drop_probability_loses_roughly_that_fraction() {
        let mut net = SimNet::new(42);
        net.bind(1, 7);
        net.set_drop_probability(0.5);
        for _ in 0..1000 {
            net.send(dgram(0, 1, 7, b"m"));
        }
        let delivered = net.stats().delivered;
        assert!(
            (300..=700).contains(&delivered),
            "delivered {delivered} out of 1000 at p=0.5"
        );
        assert_eq!(net.stats().dropped + delivered, 1000);
    }

    #[test]
    fn zero_drop_probability_is_reliable() {
        let mut net = SimNet::new(3);
        net.bind(2, 1);
        for _ in 0..100 {
            assert!(net.send(dgram(0, 2, 1, b"m")));
        }
        assert_eq!(net.stats().delivered, 100);
        assert_eq!(net.stats().dropped, 0);
    }

    #[test]
    fn handle_shares_one_network() {
        let handle = NetHandle::new(SimNet::new(9));
        handle.bind(5, 10);
        let clone = handle.clone();
        clone.send(dgram(1, 5, 10, b"shared"));
        assert_eq!(handle.recv(5, 10).unwrap().payload, b"shared");
    }

    #[test]
    fn fork_captures_queues_independently() {
        let handle = NetHandle::new(SimNet::new(9));
        handle.bind(5, 10);
        handle.send(dgram(1, 5, 10, b"before"));

        let fork = handle.fork();
        // The fork sees the pre-fork datagram, but later traffic on either
        // side stays on that side.
        handle.send(dgram(1, 5, 10, b"after"));
        assert_eq!(fork.pending(5, 10), 1);
        assert_eq!(fork.recv(5, 10).unwrap().payload, b"before");
        assert!(fork.recv(5, 10).is_none());
        assert_eq!(handle.pending(5, 10), 2);
    }
}
