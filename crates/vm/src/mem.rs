//! Sparse paged process memory.
//!
//! Memory is allocated in pages and only explicitly mapped regions are
//! accessible. The zero page is never mapped, so null-pointer dereferences
//! fault exactly like a SIGSEGV would in the paper's experiments (several of
//! the Table 1 bugs manifest as dereferences of NULL returned by a failed
//! `malloc`/`opendir`/`fopen`).
//!
//! Pages are reference-counted and copied on write: cloning a [`Memory`]
//! shares every page with the original, and a write to either side copies
//! only the touched page. This is what makes [`crate::MachineSnapshot`]
//! forks cheap — a campaign can restore hundreds of VMs from one snapshot
//! and pay only for the pages each run actually dirties.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use lfi_arch::{Addr, Word};

/// Size of a memory page in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// One page of memory.
type Page = [u8; PAGE_SIZE as usize];

/// Memory access errors, surfaced to the machine as faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Access to an address in an unmapped page.
    Unmapped {
        /// The faulting address.
        addr: Addr,
    },
    /// Address arithmetic overflowed.
    AddressOverflow,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped { addr } => write!(f, "unmapped memory access at {addr:#x}"),
            MemError::AddressOverflow => write!(f, "address arithmetic overflow"),
        }
    }
}

impl std::error::Error for MemError {}

/// Sparse byte-addressable memory with copy-on-write pages.
#[derive(Debug, Default, Clone)]
pub struct Memory {
    pages: HashMap<u64, Arc<Page>>,
    mapped_bytes: u64,
}

impl Memory {
    /// Create an empty address space with nothing mapped.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Map the pages covering `[start, start + len)`; the new memory is
    /// zero-filled. Mapping an already-mapped page is a no-op.
    pub fn map_region(&mut self, start: Addr, len: u64) {
        if len == 0 {
            return;
        }
        let first = start / PAGE_SIZE;
        let last = (start + len - 1) / PAGE_SIZE;
        for page in first..=last {
            self.pages.entry(page).or_insert_with(|| {
                self.mapped_bytes += PAGE_SIZE;
                Arc::new([0u8; PAGE_SIZE as usize])
            });
        }
    }

    /// Whether `addr` lies in a mapped page.
    pub fn is_mapped(&self, addr: Addr) -> bool {
        self.pages.contains_key(&(addr / PAGE_SIZE))
    }

    /// Total number of bytes currently mapped.
    pub fn mapped_bytes(&self) -> u64 {
        self.mapped_bytes
    }

    /// Number of pages physically shared with `other` (same backing
    /// allocation, i.e. untouched since the clone that separated them).
    pub fn pages_shared_with(&self, other: &Memory) -> usize {
        self.pages
            .iter()
            .filter(|(index, page)| {
                other
                    .pages
                    .get(index)
                    .is_some_and(|theirs| Arc::ptr_eq(page, theirs))
            })
            .count()
    }

    /// A stable FNV-1a digest of the full memory contents (mapped page
    /// indices and bytes, in page order). Used to assert snapshot/restore
    /// round-trips are byte-identical.
    pub fn digest(&self) -> u64 {
        let mut indices: Vec<u64> = self.pages.keys().copied().collect();
        indices.sort_unstable();
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for byte in bytes {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for index in indices {
            mix(&index.to_le_bytes());
            mix(self.pages[&index].as_ref());
        }
        hash
    }

    fn page(&self, addr: Addr) -> Result<&Page, MemError> {
        self.pages
            .get(&(addr / PAGE_SIZE))
            .map(|b| b.as_ref())
            .ok_or(MemError::Unmapped { addr })
    }

    fn page_mut(&mut self, addr: Addr) -> Result<&mut Page, MemError> {
        self.pages
            .get_mut(&(addr / PAGE_SIZE))
            .map(Arc::make_mut)
            .ok_or(MemError::Unmapped { addr })
    }

    /// Read one byte.
    pub fn read_u8(&self, addr: Addr) -> Result<u8, MemError> {
        let page = self.page(addr)?;
        Ok(page[(addr % PAGE_SIZE) as usize])
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: Addr, value: u8) -> Result<(), MemError> {
        let page = self.page_mut(addr)?;
        page[(addr % PAGE_SIZE) as usize] = value;
        Ok(())
    }

    /// Read a 64-bit word (little endian). The access may straddle pages.
    pub fn read_word(&self, addr: Addr) -> Result<Word, MemError> {
        let mut bytes = [0u8; 8];
        self.read_bytes(addr, &mut bytes)?;
        Ok(Word::from_le_bytes(bytes))
    }

    /// Write a 64-bit word (little endian). The access may straddle pages.
    pub fn write_word(&mut self, addr: Addr, value: Word) -> Result<(), MemError> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Read `buf.len()` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: Addr, buf: &mut [u8]) -> Result<(), MemError> {
        for (i, slot) in buf.iter_mut().enumerate() {
            let a = addr
                .checked_add(i as u64)
                .ok_or(MemError::AddressOverflow)?;
            *slot = self.read_u8(a)?;
        }
        Ok(())
    }

    /// Write all of `bytes` starting at `addr`.
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) -> Result<(), MemError> {
        for (i, &b) in bytes.iter().enumerate() {
            let a = addr
                .checked_add(i as u64)
                .ok_or(MemError::AddressOverflow)?;
            self.write_u8(a, b)?;
        }
        Ok(())
    }

    /// Read a NUL-terminated string of at most `max_len` bytes.
    pub fn read_cstring(&self, addr: Addr, max_len: usize) -> Result<String, MemError> {
        let mut bytes = Vec::new();
        for i in 0..max_len as u64 {
            let a = addr.checked_add(i).ok_or(MemError::AddressOverflow)?;
            let b = self.read_u8(a)?;
            if b == 0 {
                break;
            }
            bytes.push(b);
        }
        Ok(String::from_utf8_lossy(&bytes).into_owned())
    }

    /// Write a string followed by a NUL terminator.
    pub fn write_cstring(&mut self, addr: Addr, s: &str) -> Result<(), MemError> {
        self.write_bytes(addr, s.as_bytes())?;
        self.write_u8(addr + s.len() as u64, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_access_faults() {
        let mut mem = Memory::new();
        assert_eq!(
            mem.read_u8(0x1000),
            Err(MemError::Unmapped { addr: 0x1000 })
        );
        assert_eq!(
            mem.write_word(0x2000, 7),
            Err(MemError::Unmapped { addr: 0x2000 })
        );
    }

    #[test]
    fn null_page_is_never_mapped_by_default() {
        let mem = Memory::new();
        assert!(!mem.is_mapped(0));
        assert!(mem.read_word(0).is_err());
    }

    #[test]
    fn mapped_region_reads_back_zero_then_written_values() {
        let mut mem = Memory::new();
        mem.map_region(0x10_000, 64);
        assert_eq!(mem.read_word(0x10_000).unwrap(), 0);
        mem.write_word(0x10_008, -42).unwrap();
        assert_eq!(mem.read_word(0x10_008).unwrap(), -42);
        mem.write_u8(0x10_001, 0xAB).unwrap();
        assert_eq!(mem.read_u8(0x10_001).unwrap(), 0xAB);
    }

    #[test]
    fn word_access_straddling_pages_works() {
        let mut mem = Memory::new();
        mem.map_region(PAGE_SIZE - 8, 16);
        let addr = PAGE_SIZE - 4;
        mem.write_word(addr, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(mem.read_word(addr).unwrap(), 0x1122_3344_5566_7788);
    }

    #[test]
    fn word_access_straddling_into_unmapped_page_faults() {
        let mut mem = Memory::new();
        // Map only the first page; a word write near its end spills over.
        mem.map_region(0, PAGE_SIZE);
        assert!(mem.write_word(PAGE_SIZE - 4, 1).is_err());
    }

    #[test]
    fn cstring_roundtrip_and_truncation() {
        let mut mem = Memory::new();
        mem.map_region(0x20_000, PAGE_SIZE);
        mem.write_cstring(0x20_000, "hello").unwrap();
        assert_eq!(mem.read_cstring(0x20_000, 100).unwrap(), "hello");
        assert_eq!(mem.read_cstring(0x20_000, 3).unwrap(), "hel");
    }

    #[test]
    fn mapping_twice_does_not_reset_contents() {
        let mut mem = Memory::new();
        mem.map_region(0x30_000, 8);
        mem.write_word(0x30_000, 9).unwrap();
        mem.map_region(0x30_000, PAGE_SIZE);
        assert_eq!(mem.read_word(0x30_000).unwrap(), 9);
    }

    #[test]
    fn clones_share_pages_until_written() {
        let mut mem = Memory::new();
        mem.map_region(0x40_000, PAGE_SIZE * 3);
        mem.write_word(0x40_000, 1).unwrap();
        let mut fork = mem.clone();
        assert_eq!(fork.pages_shared_with(&mem), 3, "clone is COW, not a copy");
        assert_eq!(fork.digest(), mem.digest());

        // Writing through the fork copies only the touched page.
        fork.write_word(0x40_000, 2).unwrap();
        assert_eq!(fork.pages_shared_with(&mem), 2);
        assert_eq!(mem.read_word(0x40_000).unwrap(), 1, "original unchanged");
        assert_eq!(fork.read_word(0x40_000).unwrap(), 2);
        assert_ne!(fork.digest(), mem.digest());

        // Writing the original value back restores byte identity (digests
        // compare contents, not sharing).
        fork.write_word(0x40_000, 1).unwrap();
        assert_eq!(fork.digest(), mem.digest());
    }

    #[test]
    fn mapped_bytes_accounting() {
        let mut mem = Memory::new();
        mem.map_region(0, 1);
        assert_eq!(mem.mapped_bytes(), PAGE_SIZE);
        mem.map_region(0, PAGE_SIZE * 2);
        assert_eq!(mem.mapped_bytes(), PAGE_SIZE * 2);
    }
}
