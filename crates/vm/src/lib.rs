//! Execution substrate for the LFI reproduction.
//!
//! This crate is the analogue of "a Linux process" in the paper: it loads
//! executables and shared libraries produced by `lfi-cc`/`lfi-asm`, resolves
//! imported symbols with a preload-aware search order (the LD_PRELOAD
//! mechanism LFI uses for interposition), executes the program on a small
//! register machine with green threads, TLS (`errno`), mutexes, an in-memory
//! filesystem and a datagram network, and reports crashes, aborts and
//! coverage back to the test controller.
//!
//! The LFI runtime (in `lfi-core`) plugs into the VM through the
//! [`HookHandler`] trait: any imported function can be intercepted at symbol
//! resolution time, exactly like a shim library interposed with LD_PRELOAD.

pub mod coverage;
pub mod fs;
pub mod loader;
pub mod machine;
pub mod mem;
pub mod net;
mod sys;

pub use coverage::Coverage;
pub use fs::{FsError, SimFs};
pub use loader::{Image, LoadError, LoadedModule, Loader, Resolution};
pub use machine::{
    CallContext, ExecStats, Fault, FaultKind, Frame, HookAction, HookHandler, Machine,
    MachineSnapshot, NoHooks, ProcessConfig, RunExit,
};
pub use mem::{MemError, Memory, PAGE_SIZE};
pub use net::{Datagram, NetHandle, SimNet};
