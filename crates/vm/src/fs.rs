//! In-memory filesystem used by the simulated environment.
//!
//! The filesystem exposes the operations the simulated libc needs (`open`,
//! `read`, `write`, `unlink`, `mkdir`, `opendir`/`readdir`, `readlink`,
//! `rename`, `stat`, ...). Failures are reported as negative errno values in
//! the kernel style; the libc turns them into `-1` + `errno`.

use std::collections::BTreeMap;

use lfi_arch::{abi::filekind, errno};

/// A node in the filesystem tree.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Node {
    File(Vec<u8>),
    Dir,
    Symlink(String),
}

/// Error type used internally; converted to `-errno` at the syscall surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsError(pub i64);

impl FsError {
    /// The errno value carried by this error.
    pub fn errno(self) -> i64 {
        self.0
    }
}

type FsResult<T> = Result<T, FsError>;

/// A simple in-memory filesystem with a flat map of normalized absolute paths.
#[derive(Debug, Clone, Default)]
pub struct SimFs {
    nodes: BTreeMap<String, Node>,
    /// Paths for which every operation fails with `EIO`, used by workloads to
    /// emulate low-level I/O problems without LFI involvement.
    io_error_paths: Vec<String>,
}

fn normalize(path: &str) -> String {
    let mut parts: Vec<&str> = Vec::new();
    for part in path.split('/') {
        match part {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            other => parts.push(other),
        }
    }
    format!("/{}", parts.join("/"))
}

fn parent_of(path: &str) -> String {
    let norm = normalize(path);
    match norm.rfind('/') {
        Some(0) | None => "/".to_string(),
        Some(idx) => norm[..idx].to_string(),
    }
}

impl SimFs {
    /// Create a filesystem containing only the root directory.
    pub fn new() -> SimFs {
        let mut fs = SimFs::default();
        fs.nodes.insert("/".to_string(), Node::Dir);
        fs
    }

    /// Total bytes held by the filesystem: path names plus regular-file
    /// contents (symlink targets count as their path length). Used by
    /// session caches to estimate the resident size of a snapshot.
    pub fn total_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|(path, node)| {
                path.len() as u64
                    + match node {
                        Node::File(data) => data.len() as u64,
                        Node::Symlink(target) => target.len() as u64,
                        Node::Dir => 0,
                    }
            })
            .sum()
    }

    /// Mark a path so that reads and writes on it fail with `EIO`.
    ///
    /// This is how workloads emulate the paper's "file exists but reading
    /// from it fails for a reason such as a low-level I/O error" scenario for
    /// the MySQL `errmsg.sys` bug, without involving the fault injector.
    pub fn set_io_error(&mut self, path: &str) {
        self.io_error_paths.push(normalize(path));
    }

    fn has_io_error(&self, path: &str) -> bool {
        self.io_error_paths.iter().any(|p| p == path)
    }

    /// Create or replace a regular file with the given contents.
    pub fn write_file(&mut self, path: &str, contents: &[u8]) -> FsResult<()> {
        let path = normalize(path);
        let parent = parent_of(&path);
        if !matches!(self.nodes.get(&parent), Some(Node::Dir)) {
            return Err(FsError(errno::ENOENT));
        }
        if matches!(self.nodes.get(&path), Some(Node::Dir)) {
            return Err(FsError(errno::EISDIR));
        }
        self.nodes.insert(path, Node::File(contents.to_vec()));
        Ok(())
    }

    /// Read the contents of a regular file.
    pub fn read_file(&self, path: &str) -> FsResult<Vec<u8>> {
        let path = normalize(path);
        if self.has_io_error(&path) {
            return Err(FsError(errno::EIO));
        }
        match self.nodes.get(&path) {
            Some(Node::File(data)) => Ok(data.clone()),
            Some(Node::Dir) => Err(FsError(errno::EISDIR)),
            Some(Node::Symlink(target)) => self.read_file(&target.clone()),
            None => Err(FsError(errno::ENOENT)),
        }
    }

    /// Whether a path exists (file, directory or symlink).
    pub fn exists(&self, path: &str) -> bool {
        self.nodes.contains_key(&normalize(path))
    }

    /// Create a directory (parents must exist).
    pub fn mkdir(&mut self, path: &str) -> FsResult<()> {
        let path = normalize(path);
        if self.nodes.contains_key(&path) {
            return Err(FsError(errno::EEXIST));
        }
        let parent = parent_of(&path);
        if !matches!(self.nodes.get(&parent), Some(Node::Dir)) {
            return Err(FsError(errno::ENOENT));
        }
        self.nodes.insert(path, Node::Dir);
        Ok(())
    }

    /// Create all missing directories along a path.
    pub fn mkdir_all(&mut self, path: &str) {
        let norm = normalize(path);
        let mut current = String::new();
        for part in norm.split('/').filter(|p| !p.is_empty()) {
            current.push('/');
            current.push_str(part);
            self.nodes.entry(current.clone()).or_insert(Node::Dir);
        }
    }

    /// Remove a file or symlink.
    pub fn unlink(&mut self, path: &str) -> FsResult<()> {
        let path = normalize(path);
        match self.nodes.get(&path) {
            Some(Node::Dir) => Err(FsError(errno::EISDIR)),
            Some(_) => {
                self.nodes.remove(&path);
                Ok(())
            }
            None => Err(FsError(errno::ENOENT)),
        }
    }

    /// Rename a file, directory or symlink.
    pub fn rename(&mut self, old: &str, new: &str) -> FsResult<()> {
        let old = normalize(old);
        let new = normalize(new);
        let node = self.nodes.remove(&old).ok_or(FsError(errno::ENOENT))?;
        let parent = parent_of(&new);
        if !matches!(self.nodes.get(&parent), Some(Node::Dir)) {
            self.nodes.insert(old, node);
            return Err(FsError(errno::ENOENT));
        }
        self.nodes.insert(new, node);
        Ok(())
    }

    /// Create a symlink at `link` pointing to `target`.
    pub fn symlink(&mut self, target: &str, link: &str) -> FsResult<()> {
        let link = normalize(link);
        if self.nodes.contains_key(&link) {
            return Err(FsError(errno::EEXIST));
        }
        let parent = parent_of(&link);
        if !matches!(self.nodes.get(&parent), Some(Node::Dir)) {
            return Err(FsError(errno::ENOENT));
        }
        self.nodes.insert(link, Node::Symlink(target.to_string()));
        Ok(())
    }

    /// Read the target of a symlink.
    pub fn readlink(&self, path: &str) -> FsResult<String> {
        match self.nodes.get(&normalize(path)) {
            Some(Node::Symlink(target)) => Ok(target.clone()),
            Some(_) => Err(FsError(errno::EINVAL)),
            None => Err(FsError(errno::ENOENT)),
        }
    }

    /// List the names of the entries directly inside a directory.
    pub fn list_dir(&self, path: &str) -> FsResult<Vec<String>> {
        let path = normalize(path);
        match self.nodes.get(&path) {
            Some(Node::Dir) => {}
            Some(_) => return Err(FsError(errno::ENOTDIR)),
            None => return Err(FsError(errno::ENOENT)),
        }
        let prefix = if path == "/" {
            "/".to_string()
        } else {
            format!("{path}/")
        };
        let mut names = Vec::new();
        for key in self.nodes.keys() {
            if let Some(rest) = key.strip_prefix(&prefix) {
                if !rest.is_empty() && !rest.contains('/') {
                    names.push(rest.to_string());
                }
            }
        }
        Ok(names)
    }

    /// File kind and size, following at most one level of symlink.
    pub fn stat(&self, path: &str) -> FsResult<(i64, i64)> {
        let path = normalize(path);
        match self.nodes.get(&path) {
            Some(Node::File(data)) => Ok((filekind::REGULAR, data.len() as i64)),
            Some(Node::Dir) => Ok((filekind::DIRECTORY, 0)),
            Some(Node::Symlink(target)) => {
                let target = target.clone();
                match self.nodes.get(&normalize(&target)) {
                    Some(Node::File(data)) => Ok((filekind::REGULAR, data.len() as i64)),
                    Some(Node::Dir) => Ok((filekind::DIRECTORY, 0)),
                    _ => Ok((filekind::SYMLINK, target.len() as i64)),
                }
            }
            None => Err(FsError(errno::ENOENT)),
        }
    }

    /// Truncate or extend a regular file to the given length.
    pub fn truncate(&mut self, path: &str, len: u64) -> FsResult<()> {
        let path = normalize(path);
        match self.nodes.get_mut(&path) {
            Some(Node::File(data)) => {
                data.resize(len as usize, 0);
                Ok(())
            }
            Some(_) => Err(FsError(errno::EISDIR)),
            None => Err(FsError(errno::ENOENT)),
        }
    }

    /// Read `count` bytes from a file starting at `offset`.
    pub fn read_at(&self, path: &str, offset: u64, count: usize) -> FsResult<Vec<u8>> {
        let path = normalize(path);
        if self.has_io_error(&path) {
            return Err(FsError(errno::EIO));
        }
        match self.nodes.get(&path) {
            Some(Node::File(data)) => {
                let start = (offset as usize).min(data.len());
                let end = (start + count).min(data.len());
                Ok(data[start..end].to_vec())
            }
            Some(Node::Dir) => Err(FsError(errno::EISDIR)),
            Some(Node::Symlink(t)) => self.read_at(&t.clone(), offset, count),
            None => Err(FsError(errno::ENOENT)),
        }
    }

    /// Write bytes into a file at `offset`, extending it if needed.
    pub fn write_at(&mut self, path: &str, offset: u64, bytes: &[u8]) -> FsResult<usize> {
        let path = normalize(path);
        if self.has_io_error(&path) {
            return Err(FsError(errno::EIO));
        }
        match self.nodes.get_mut(&path) {
            Some(Node::File(data)) => {
                let end = offset as usize + bytes.len();
                if data.len() < end {
                    data.resize(end, 0);
                }
                data[offset as usize..end].copy_from_slice(bytes);
                Ok(bytes.len())
            }
            Some(Node::Dir) => Err(FsError(errno::EISDIR)),
            Some(Node::Symlink(t)) => {
                let target = t.clone();
                self.write_at(&target, offset, bytes)
            }
            None => Err(FsError(errno::ENOENT)),
        }
    }

    /// Size of a regular file.
    pub fn file_len(&self, path: &str) -> FsResult<u64> {
        self.stat(path).map(|(_, len)| len as u64)
    }

    /// All paths currently in the filesystem (for assertions in tests).
    pub fn paths(&self) -> Vec<String> {
        self.nodes.keys().cloned().collect()
    }

    /// A stable FNV-1a digest of the whole filesystem: every path, node
    /// kind, contents, and the I/O-error path list, in path order. Used to
    /// assert snapshot/restore round-trips are byte-identical.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for byte in bytes {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for (path, node) in &self.nodes {
            mix(path.as_bytes());
            match node {
                Node::File(data) => {
                    mix(&[1]);
                    mix(data);
                }
                Node::Dir => mix(&[2]),
                Node::Symlink(target) => {
                    mix(&[3]);
                    mix(target.as_bytes());
                }
            }
            mix(&[0xff]);
        }
        for path in &self.io_error_paths {
            mix(path.as_bytes());
            mix(&[0xfe]);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_and_read_file() {
        let mut fs = SimFs::new();
        // Writing under a missing parent directory fails.
        assert_eq!(
            fs.write_file("/etc/zone.conf", b"example.org"),
            Err(FsError(errno::ENOENT))
        );
        assert_eq!(fs.read_file("/etc/zone.conf"), Err(FsError(errno::ENOENT)));
        fs.mkdir("/etc").unwrap();
        fs.write_file("/etc/zone.conf", b"example.org").unwrap();
        assert_eq!(fs.read_file("/etc/zone.conf").unwrap(), b"example.org");
    }

    #[test]
    fn missing_file_is_enoent() {
        let fs = SimFs::new();
        assert_eq!(fs.read_file("/nope"), Err(FsError(errno::ENOENT)));
        assert_eq!(fs.stat("/nope"), Err(FsError(errno::ENOENT)));
    }

    #[test]
    fn mkdir_and_listing() {
        let mut fs = SimFs::new();
        fs.mkdir("/a").unwrap();
        fs.mkdir("/a/b").unwrap();
        fs.write_file("/a/x", b"1").unwrap();
        fs.write_file("/a/y", b"2").unwrap();
        let mut names = fs.list_dir("/a").unwrap();
        names.sort();
        assert_eq!(names, vec!["b", "x", "y"]);
        assert_eq!(fs.list_dir("/a/x"), Err(FsError(errno::ENOTDIR)));
        assert_eq!(fs.list_dir("/missing"), Err(FsError(errno::ENOENT)));
        assert_eq!(fs.mkdir("/a"), Err(FsError(errno::EEXIST)));
    }

    #[test]
    fn mkdir_all_creates_parents() {
        let mut fs = SimFs::new();
        fs.mkdir_all("/repo/.git/objects");
        assert!(fs.exists("/repo/.git/objects"));
        assert_eq!(fs.stat("/repo/.git").unwrap().0, filekind::DIRECTORY);
    }

    #[test]
    fn unlink_and_rename() {
        let mut fs = SimFs::new();
        fs.write_file("/f", b"data").unwrap();
        fs.rename("/f", "/g").unwrap();
        assert!(!fs.exists("/f"));
        assert_eq!(fs.read_file("/g").unwrap(), b"data");
        fs.unlink("/g").unwrap();
        assert_eq!(fs.unlink("/g"), Err(FsError(errno::ENOENT)));
        fs.mkdir("/d").unwrap();
        assert_eq!(fs.unlink("/d"), Err(FsError(errno::EISDIR)));
    }

    #[test]
    fn symlink_and_readlink() {
        let mut fs = SimFs::new();
        fs.write_file("/real", b"content").unwrap();
        fs.symlink("/real", "/link").unwrap();
        assert_eq!(fs.readlink("/link").unwrap(), "/real");
        assert_eq!(fs.read_file("/link").unwrap(), b"content");
        assert_eq!(fs.readlink("/real"), Err(FsError(errno::EINVAL)));
    }

    #[test]
    fn read_write_at_offsets() {
        let mut fs = SimFs::new();
        fs.write_file("/f", b"hello world").unwrap();
        assert_eq!(fs.read_at("/f", 6, 5).unwrap(), b"world");
        assert_eq!(fs.read_at("/f", 100, 5).unwrap(), b"");
        fs.write_at("/f", 6, b"earth").unwrap();
        assert_eq!(fs.read_file("/f").unwrap(), b"hello earth");
        fs.write_at("/f", 20, b"!").unwrap();
        assert_eq!(fs.file_len("/f").unwrap(), 21);
    }

    #[test]
    fn io_error_paths_fail_reads_and_writes() {
        let mut fs = SimFs::new();
        fs.write_file("/errmsg.sys", b"messages").unwrap();
        fs.set_io_error("/errmsg.sys");
        assert_eq!(fs.read_file("/errmsg.sys"), Err(FsError(errno::EIO)));
        assert_eq!(fs.read_at("/errmsg.sys", 0, 4), Err(FsError(errno::EIO)));
        assert_eq!(
            fs.write_at("/errmsg.sys", 0, b"x"),
            Err(FsError(errno::EIO))
        );
    }

    #[test]
    fn path_normalization() {
        let mut fs = SimFs::new();
        fs.mkdir("/a").unwrap();
        fs.write_file("/a/./b", b"1").unwrap();
        assert_eq!(fs.read_file("/a/b").unwrap(), b"1");
        assert_eq!(fs.read_file("/a/../a/b").unwrap(), b"1");
        assert!(fs.exists("//a//b"));
    }

    #[test]
    fn truncate_grows_and_shrinks() {
        let mut fs = SimFs::new();
        fs.write_file("/f", b"abcdef").unwrap();
        fs.truncate("/f", 3).unwrap();
        assert_eq!(fs.read_file("/f").unwrap(), b"abc");
        fs.truncate("/f", 5).unwrap();
        assert_eq!(fs.read_file("/f").unwrap(), b"abc\0\0");
    }
}
