//! The execution engine: threads, scheduler, instruction semantics, faults,
//! and the interposition hook surface used by the LFI runtime.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use lfi_arch::{Addr, AluOp, CallConv, Insn, Reg, Word, INSN_SIZE};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::coverage::Coverage;
use crate::fs::SimFs;
use crate::loader::{Image, Resolution};
use crate::mem::{Memory, PAGE_SIZE};
use crate::net::NetHandle;

/// Start of the heap region.
pub(crate) const HEAP_BASE: Addr = 0x5000_0000;
/// Start of the stack region; each thread gets its own slice below this.
const STACK_REGION: Addr = 0x7000_0000;
/// Spacing between thread stacks.
const STACK_SPACING: Addr = 0x0010_0000;
/// Sentinel return address marking the bottom frame of a thread.
const RETURN_SENTINEL: Addr = 0xFFFF_FFFF_FFFF_0000;

/// Per-process configuration.
#[derive(Debug, Clone)]
pub struct ProcessConfig {
    /// Node identity on the simulated network.
    pub node_id: i64,
    /// Seed for the process-deterministic random stream.
    pub seed: u64,
    /// Maximum heap size in bytes before `sbrk` reports `ENOMEM`.
    pub heap_limit: u64,
    /// Per-thread stack size in bytes.
    pub stack_size: u64,
    /// Instructions per scheduling quantum.
    pub quantum: u64,
    /// Initial environment variables.
    pub env: Vec<(String, String)>,
    /// Program arguments, exposed to the program as `ARGC`/`ARG<i>` variables.
    pub args: Vec<String>,
    /// Whether to record instruction coverage (costs some speed).
    pub record_coverage: bool,
}

impl Default for ProcessConfig {
    fn default() -> Self {
        ProcessConfig {
            node_id: 0,
            seed: 0,
            heap_limit: 64 << 20,
            stack_size: 512 << 10,
            quantum: 256,
            env: Vec::new(),
            args: Vec::new(),
            record_coverage: false,
        }
    }
}

/// Kinds of fatal process faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Invalid memory access (the SIGSEGV analogue). `addr` below the page
    /// size indicates a null-pointer dereference.
    MemAccess {
        /// Faulting address.
        addr: Addr,
    },
    /// Integer division (or remainder) by zero.
    DivideByZero,
    /// Control transferred outside any module's code.
    BadPc {
        /// The invalid program counter.
        pc: Addr,
    },
    /// A call went through an unresolved or non-function symbol.
    UnresolvedSymbol {
        /// Symbol name.
        name: String,
    },
    /// `abort()` was called (the SIGABRT analogue).
    Abort,
    /// A mutex was unlocked by a thread that does not hold it — the
    /// error-checking-mutex abort that reproduces the paper's MySQL
    /// double-unlock crash.
    DoubleUnlock,
    /// A `brk` debug trap executed.
    Break,
    /// An unknown syscall number was used.
    BadSyscall {
        /// The unknown number.
        num: Word,
    },
    /// Thread stack exhausted.
    StackOverflow,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::MemAccess { addr } if *addr < PAGE_SIZE => {
                write!(f, "segmentation fault (null dereference at {addr:#x})")
            }
            FaultKind::MemAccess { addr } => write!(f, "segmentation fault at {addr:#x}"),
            FaultKind::DivideByZero => write!(f, "division by zero"),
            FaultKind::BadPc { pc } => write!(f, "jump to invalid address {pc:#x}"),
            FaultKind::UnresolvedSymbol { name } => write!(f, "unresolved symbol `{name}`"),
            FaultKind::Abort => write!(f, "abort"),
            FaultKind::DoubleUnlock => write!(f, "mutex unlocked while not held"),
            FaultKind::Break => write!(f, "breakpoint trap"),
            FaultKind::BadSyscall { num } => write!(f, "bad syscall {num}"),
            FaultKind::StackOverflow => write!(f, "stack overflow"),
        }
    }
}

/// A symbolized stack frame, used for fault reports and call-stack triggers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Module containing the call site.
    pub module: String,
    /// Code offset of the call instruction inside that module.
    pub offset: u64,
    /// Name of the function containing the call site, if known.
    pub function: Option<String>,
    /// Source location of the call site, if line info is available.
    pub source: Option<(String, u32)>,
}

/// A fatal process fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// What went wrong.
    pub kind: FaultKind,
    /// Module name at the faulting program counter.
    pub module: String,
    /// Code offset of the faulting instruction.
    pub offset: u64,
    /// Faulting thread id.
    pub thread: i64,
    /// Symbolized backtrace (innermost frame first).
    pub backtrace: Vec<Frame>,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in {}+{:#x} (thread {})",
            self.kind, self.module, self.offset, self.thread
        )
    }
}

/// Why `run` returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunExit {
    /// The process called `exit` (or `main` returned) with this code.
    Exited(i64),
    /// The process crashed.
    Fault(Fault),
    /// Every live thread is blocked; the harness must deliver external events.
    Blocked,
    /// The instruction budget given to `run` was exhausted.
    Budget,
    /// A hook returned [`HookAction::Pause`]: the machine stopped with the
    /// program counter still on the intercepted call, so a snapshot taken
    /// here can be resumed under a different handler that then observes the
    /// very same call.
    Paused,
}

impl RunExit {
    /// Whether this is a crash (fault) exit.
    pub fn is_fault(&self) -> bool {
        matches!(self, RunExit::Fault(_))
    }

    /// Whether this is a clean exit with code 0.
    pub fn is_success(&self) -> bool {
        matches!(self, RunExit::Exited(0))
    }
}

/// Aggregate execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions executed.
    pub instructions: u64,
    /// Syscalls executed.
    pub syscalls: u64,
    /// Calls executed (all kinds).
    pub calls: u64,
    /// Calls that went through an interposition hook.
    pub hooked_calls: u64,
}

/// What an interposition hook tells the VM to do with an intercepted call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HookAction {
    /// Let the call proceed to the original function.
    Forward,
    /// Skip the original function and return `value` to the caller, setting
    /// `errno` if given — i.e. inject the fault described by the scenario.
    Return {
        /// Value placed in the return register.
        value: Word,
        /// Value stored into the thread-local `errno`, if any.
        errno: Option<Word>,
    },
    /// Stop the machine *before* the intercepted call executes, rolling back
    /// this instruction's bookkeeping and leaving the program counter on the
    /// call. `run` returns [`RunExit::Paused`]; resuming (or restoring a
    /// snapshot taken at the pause) re-executes the call under whatever
    /// handler drives the next `run`. This is how session executors share a
    /// workload prefix across many injection scenarios.
    Pause,
}

/// Receiver of interposed calls. The LFI runtime implements this to evaluate
/// triggers and decide whether to inject.
pub trait HookHandler {
    /// Called for every intercepted call. `func` is the intercepted function
    /// name; `ctx` exposes the machine state triggers may want to inspect.
    fn on_call(&mut self, func: &str, ctx: &mut CallContext<'_>) -> HookAction;
}

/// A handler that never injects; used for baseline runs.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoHooks;

impl HookHandler for NoHooks {
    fn on_call(&mut self, _func: &str, _ctx: &mut CallContext<'_>) -> HookAction {
        HookAction::Forward
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    BlockedOnMutex(i64),
    Exited,
}

#[derive(Debug, Clone)]
struct ShadowFrame {
    call_site_module: usize,
    call_site_offset: u64,
    return_addr: Addr,
}

#[derive(Debug, Clone)]
struct Thread {
    id: i64,
    regs: [Word; Reg::COUNT],
    flags: Ordering,
    pc: Addr,
    tls: HashMap<String, Word>,
    frames: Vec<ShadowFrame>,
    state: ThreadState,
}

impl Thread {
    fn new(id: i64, pc: Addr, stack_top: Addr) -> Thread {
        let mut regs = [0; Reg::COUNT];
        regs[Reg::Sp.index()] = stack_top as Word;
        regs[Reg::Fp.index()] = stack_top as Word;
        Thread {
            id,
            regs,
            flags: Ordering::Equal,
            pc,
            tls: HashMap::new(),
            frames: vec![ShadowFrame {
                call_site_module: 0,
                call_site_offset: 0,
                return_addr: RETURN_SENTINEL,
            }],
            state: ThreadState::Runnable,
        }
    }

    fn reg(&self, r: Reg) -> Word {
        self.regs[r.index()]
    }

    fn set_reg(&mut self, r: Reg, v: Word) {
        self.regs[r.index()] = v;
    }
}

#[derive(Debug, Clone)]
pub(crate) enum FdEntry {
    Stdout,
    Stderr,
    File { path: String, pos: u64, flags: i64 },
    Socket { port: Option<i64>, flags: i64 },
    Dir { entries: Vec<String>, pos: usize },
}

#[derive(Debug, Clone, Default)]
pub(crate) struct MutexState {
    owner: Option<i64>,
}

pub(crate) enum SysOutcome {
    Done(Word),
    Block(i64),
    Exit(RunExit),
}

/// A running process.
pub struct Machine {
    pub(crate) image: Arc<Image>,
    pub(crate) mem: Memory,
    pub(crate) fs: SimFs,
    pub(crate) net: Option<NetHandle>,
    threads: Vec<Thread>,
    current: usize,
    next_thread_id: i64,
    pub(crate) mutexes: HashMap<i64, MutexState>,
    pub(crate) fds: Vec<Option<FdEntry>>,
    pub(crate) env: HashMap<String, String>,
    pub(crate) heap_brk: Addr,
    pub(crate) heap_limit: u64,
    /// Virtual time in ticks.
    pub(crate) clock: u64,
    /// Execution statistics.
    pub stats: ExecStats,
    /// Coverage recorded so far (empty unless enabled in the config).
    pub coverage: Coverage,
    record_coverage: bool,
    pub(crate) rng: StdRng,
    pub(crate) node_id: i64,
    pub(crate) output: Vec<u8>,
    config: ProcessConfig,
    finished: Option<RunExit>,
}

impl Machine {
    /// Create a process from a loaded image.
    pub fn new(image: Image, config: ProcessConfig) -> Machine {
        Machine::from_image(Arc::new(image), config)
    }

    /// Create a process from a shared loaded image. The image is immutable
    /// at run time, so many machines (and snapshots) can share one loaded
    /// copy — the loader's validation, layout and instruction predecoding
    /// are paid once per image instead of once per run.
    pub fn from_image(image: Arc<Image>, config: ProcessConfig) -> Machine {
        let mut mem = Memory::new();
        // Map every module's data + BSS region and copy the initialized data.
        for lm in &image.modules {
            let size = lm.data_size().max(8);
            mem.map_region(lm.data_base, size);
            if !lm.module.data.is_empty() {
                mem.write_bytes(lm.data_base, &lm.module.data)
                    .expect("freshly mapped data region");
            }
        }
        // Apply data relocations now that every module has a base address.
        for lm in &image.modules {
            for reloc in &lm.module.data_relocs {
                let resolution = image.resolution(lm.index, reloc.sym);
                let value: Word = match resolution {
                    Resolution::Func { addr } | Resolution::Data { addr } => *addr as Word,
                    Resolution::Hooked {
                        original: Some(addr),
                        ..
                    } => *addr as Word,
                    _ => 0,
                };
                mem.write_word(lm.data_base + reloc.data_offset, value)
                    .expect("relocation target inside mapped data");
            }
        }
        // Heap.
        mem.map_region(HEAP_BASE, PAGE_SIZE);
        // Main thread stack.
        let stack_top = STACK_REGION;
        mem.map_region(stack_top - config.stack_size, config.stack_size);

        let mut env: HashMap<String, String> = config.env.iter().cloned().collect();
        env.insert("ARGC".to_string(), config.args.len().to_string());
        for (i, arg) in config.args.iter().enumerate() {
            env.insert(format!("ARG{i}"), arg.clone());
        }

        let entry = image.entry;
        let mut machine = Machine {
            image,
            mem,
            fs: SimFs::new(),
            net: None,
            threads: vec![Thread::new(1, entry, stack_top)],
            current: 0,
            next_thread_id: 2,
            mutexes: HashMap::new(),
            fds: vec![None, Some(FdEntry::Stdout), Some(FdEntry::Stderr)],
            env,
            heap_brk: HEAP_BASE,
            heap_limit: config.heap_limit,
            clock: 0,
            stats: ExecStats::default(),
            coverage: Coverage::new(),
            record_coverage: config.record_coverage,
            rng: StdRng::seed_from_u64(config.seed),
            node_id: config.node_id,
            output: Vec::new(),
            config,
            finished: None,
        };
        // Pass ARGC/ARGV-style information through the environment.
        machine.threads[0].set_reg(Reg::R(1), machine.config.args.len() as Word);
        machine
    }

    /// Attach the process to a shared network.
    pub fn attach_net(&mut self, net: NetHandle) {
        self.net = Some(net);
    }

    /// Mutable access to the simulated filesystem (for workload setup).
    pub fn fs_mut(&mut self) -> &mut SimFs {
        &mut self.fs
    }

    /// Read-only access to the simulated filesystem.
    pub fn fs(&self) -> &SimFs {
        &self.fs
    }

    /// Everything the program wrote to stdout/stderr so far.
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// Output as a lossy string.
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }

    /// Current virtual time in ticks.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Add extra virtual time (used by the LFI runtime to model trigger
    /// evaluation cost, so the precision/performance experiments have a
    /// meaningful cost axis).
    pub fn add_cost(&mut self, ticks: u64) {
        self.clock += ticks;
    }

    /// The node id this process uses on the simulated network.
    pub fn node_id(&self) -> i64 {
        self.node_id
    }

    /// Set an environment variable from the harness side.
    pub fn set_env(&mut self, name: &str, value: &str) {
        self.env.insert(name.to_string(), value.to_string());
    }

    /// Read an environment variable.
    pub fn get_env(&self, name: &str) -> Option<&str> {
        self.env.get(name).map(|s| s.as_str())
    }

    /// The loaded image.
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// Value of the thread-local `errno` of the currently scheduled thread.
    pub fn errno(&self) -> Word {
        self.threads[self.current]
            .tls
            .get(CallConv::ERRNO_SYMBOL)
            .copied()
            .unwrap_or(0)
    }

    /// Read a word-sized exported global variable by name.
    pub fn read_global(&self, name: &str) -> Option<Word> {
        let addr = self.image.data_addr(name)?;
        self.mem.read_word(addr).ok()
    }

    /// Address of an exported global, if any.
    pub fn global_addr(&self, name: &str) -> Option<Addr> {
        self.image.data_addr(name)
    }

    /// Read a word from process memory.
    pub fn read_word(&self, addr: Addr) -> Option<Word> {
        self.mem.read_word(addr).ok()
    }

    /// Read a NUL-terminated string from process memory.
    pub fn read_cstring(&self, addr: Addr) -> Option<String> {
        self.mem.read_cstring(addr, 4096).ok()
    }

    /// Kind of the object behind a file descriptor (see `lfi_arch::filekind`),
    /// used by argument-inspecting triggers.
    pub fn fd_kind(&self, fd: Word) -> Option<Word> {
        use lfi_arch::abi::filekind;
        match self.fds.get(fd as usize)?.as_ref()? {
            FdEntry::Stdout | FdEntry::Stderr => Some(filekind::REGULAR),
            FdEntry::File { path, .. } => self.fs.stat(path).ok().map(|(kind, _)| kind),
            FdEntry::Socket { .. } => Some(filekind::SOCKET),
            FdEntry::Dir { .. } => Some(filekind::DIRECTORY),
        }
    }

    /// Symbolize the call stack of the currently scheduled thread, innermost
    /// call site first.
    pub fn backtrace(&self) -> Vec<Frame> {
        self.backtrace_of(self.current)
    }

    fn backtrace_of(&self, thread_index: usize) -> Vec<Frame> {
        let thread = &self.threads[thread_index];
        let mut frames = Vec::new();
        for shadow in thread.frames.iter().rev() {
            let module = &self.image.modules[shadow.call_site_module];
            let function = module
                .module
                .containing_function(shadow.call_site_offset)
                .map(|e| e.name.clone());
            let source = module
                .module
                .line_for_offset(shadow.call_site_offset)
                .map(|(f, l)| (f.to_string(), l));
            frames.push(Frame {
                module: module.module.name.clone(),
                offset: shadow.call_site_offset,
                function,
                source,
            });
        }
        frames
    }

    /// Id of the currently scheduled thread.
    pub fn current_thread(&self) -> i64 {
        self.threads[self.current].id
    }

    /// Number of live (not exited) threads.
    pub fn live_threads(&self) -> usize {
        self.threads
            .iter()
            .filter(|t| t.state != ThreadState::Exited)
            .count()
    }

    /// Number of mutexes currently held by the given thread.
    pub fn mutexes_held_by(&self, thread_id: i64) -> usize {
        self.mutexes
            .values()
            .filter(|m| m.owner == Some(thread_id))
            .count()
    }

    /// Whether the process has already terminated (exited or crashed).
    pub fn finished(&self) -> Option<&RunExit> {
        self.finished.as_ref()
    }

    /// Reseed the process-deterministic random stream. Session executors
    /// call this on a forked machine so each fork draws from its own unit
    /// seed; it matches fresh-VM behavior exactly when the shared prefix
    /// consumed no randomness — check [`Machine::rng_is_pristine`] before
    /// snapshotting a prefix.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Whether the process has consumed any randomness yet, i.e. its RNG
    /// stream is still at the position seeded at creation. Session
    /// executors refuse to snapshot a prefix that drew randomness: a fork
    /// reseeds with its own unit seed, which reproduces fresh-VM behavior
    /// only from an untouched stream. (Only meaningful on a machine that
    /// has not been [`Machine::reseed`]ed, which replaces the stream
    /// without updating the creation seed.)
    pub fn rng_is_pristine(&self) -> bool {
        self.rng == StdRng::seed_from_u64(self.config.seed)
    }

    /// Enable or disable instruction-coverage recording from here on.
    /// Already-recorded coverage is kept. Sessions record coverage during
    /// the shared prefix (so baseline-reachability forks can keep
    /// accumulating) and turn it off in injection forks, which never read it.
    pub fn set_record_coverage(&mut self, record: bool) {
        self.record_coverage = record;
    }

    /// Remove and return the coverage recorded so far, leaving an empty
    /// record. Session executors strip the prefix coverage out of the
    /// machine before snapshotting it, so the (potentially large) offset
    /// sets are kept once per session instead of being cloned into every
    /// fork.
    pub fn take_coverage(&mut self) -> Coverage {
        std::mem::take(&mut self.coverage)
    }

    /// Deep-copy the machine. Memory is copy-on-write (cheap), the image is
    /// shared, and an attached network is captured by value — the copy gets
    /// its own independent network containing the current queues.
    fn duplicate(&self) -> Machine {
        Machine {
            image: Arc::clone(&self.image),
            mem: self.mem.clone(),
            fs: self.fs.clone(),
            net: self.net.as_ref().map(NetHandle::fork),
            threads: self.threads.clone(),
            current: self.current,
            next_thread_id: self.next_thread_id,
            mutexes: self.mutexes.clone(),
            fds: self.fds.clone(),
            env: self.env.clone(),
            heap_brk: self.heap_brk,
            heap_limit: self.heap_limit,
            clock: self.clock,
            stats: self.stats,
            coverage: self.coverage.clone(),
            record_coverage: self.record_coverage,
            rng: self.rng.clone(),
            node_id: self.node_id,
            output: self.output.clone(),
            config: self.config.clone(),
            finished: self.finished.clone(),
        }
    }

    /// Capture the complete machine state — memory, registers and threads,
    /// filesystem, network, file descriptors, coverage, RNG, clock, output —
    /// as a restorable value. The loaded image is shared, memory pages are
    /// copy-on-write, and an attached network is deep-copied, so snapshots
    /// are cheap and forks are fully isolated from the live machine.
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            machine: self.duplicate(),
        }
    }

    /// Restore this machine to a previously captured snapshot, discarding
    /// all state accumulated since (including network traffic: the restored
    /// machine is attached to a fresh copy of the snapshot's network, not to
    /// whatever handle it had before).
    pub fn restore(&mut self, snapshot: &MachineSnapshot) {
        *self = snapshot.machine.duplicate();
    }

    /// A stable digest of the architectural machine state: every thread's
    /// registers, program counter, TLS, shadow stack and run state, plus
    /// memory, filesystem, coverage, file descriptors, environment, heap,
    /// clock, statistics and output. Two machines with equal fingerprints
    /// are byte-identical as far as the program can observe (the RNG stream
    /// position is restored by snapshots but is not part of the digest).
    pub fn state_fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for byte in bytes {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for thread in &self.threads {
            mix(&thread.id.to_le_bytes());
            mix(&thread.pc.to_le_bytes());
            for reg in &thread.regs {
                mix(&reg.to_le_bytes());
            }
            mix(&[match thread.flags {
                Ordering::Less => 0,
                Ordering::Equal => 1,
                Ordering::Greater => 2,
            }]);
            let mut tls: Vec<(&String, &Word)> = thread.tls.iter().collect();
            tls.sort();
            for (name, value) in tls {
                mix(name.as_bytes());
                mix(&value.to_le_bytes());
            }
            for frame in &thread.frames {
                mix(&(frame.call_site_module as u64).to_le_bytes());
                mix(&frame.call_site_offset.to_le_bytes());
                mix(&frame.return_addr.to_le_bytes());
            }
            mix(&[match thread.state {
                ThreadState::Runnable => 1,
                ThreadState::BlockedOnMutex(_) => 2,
                ThreadState::Exited => 3,
            }]);
            mix(&[0xff]);
        }
        mix(&(self.current as u64).to_le_bytes());
        mix(&self.next_thread_id.to_le_bytes());
        mix(&self.mem.digest().to_le_bytes());
        mix(&self.fs.digest().to_le_bytes());
        mix(&self.coverage.digest().to_le_bytes());
        let mut mutexes: Vec<(&i64, Option<i64>)> =
            self.mutexes.iter().map(|(id, m)| (id, m.owner)).collect();
        mutexes.sort();
        for (id, owner) in mutexes {
            mix(&id.to_le_bytes());
            mix(&owner.unwrap_or(i64::MIN).to_le_bytes());
        }
        for fd in &self.fds {
            match fd {
                None => mix(&[0]),
                Some(FdEntry::Stdout) => mix(&[1]),
                Some(FdEntry::Stderr) => mix(&[2]),
                Some(FdEntry::File { path, pos, flags }) => {
                    mix(&[3]);
                    mix(path.as_bytes());
                    mix(&pos.to_le_bytes());
                    mix(&flags.to_le_bytes());
                }
                Some(FdEntry::Socket { port, flags }) => {
                    mix(&[4]);
                    mix(&port.unwrap_or(i64::MIN).to_le_bytes());
                    mix(&flags.to_le_bytes());
                }
                Some(FdEntry::Dir { entries, pos }) => {
                    mix(&[5]);
                    for entry in entries {
                        mix(entry.as_bytes());
                    }
                    mix(&(*pos as u64).to_le_bytes());
                }
            }
        }
        let mut env: Vec<(&String, &String)> = self.env.iter().collect();
        env.sort();
        for (name, value) in env {
            mix(name.as_bytes());
            mix(value.as_bytes());
        }
        mix(&self.heap_brk.to_le_bytes());
        mix(&self.clock.to_le_bytes());
        mix(&self.stats.instructions.to_le_bytes());
        mix(&self.stats.syscalls.to_le_bytes());
        mix(&self.stats.calls.to_le_bytes());
        mix(&self.stats.hooked_calls.to_le_bytes());
        mix(&self.output);
        hash
    }

    fn fault(&self, kind: FaultKind) -> RunExit {
        let thread = &self.threads[self.current];
        let (module, offset) = match self.image.find_code(thread.pc) {
            Some((idx, off)) => (self.image.modules[idx].module.name.clone(), off),
            None => ("<unknown>".to_string(), thread.pc),
        };
        RunExit::Fault(Fault {
            kind,
            module,
            offset,
            thread: thread.id,
            backtrace: self.backtrace_of(self.current),
        })
    }

    pub(crate) fn spawn_thread(&mut self, entry: Addr, arg: Word) -> i64 {
        let id = self.next_thread_id;
        self.next_thread_id += 1;
        let stack_top = STACK_REGION + (id as Addr) * STACK_SPACING;
        self.mem
            .map_region(stack_top - self.config.stack_size, self.config.stack_size);
        let mut thread = Thread::new(id, entry, stack_top);
        thread.set_reg(Reg::R(1), arg);
        self.threads.push(thread);
        id
    }

    pub(crate) fn exit_current_thread(&mut self) {
        self.threads[self.current].state = ThreadState::Exited;
    }

    pub(crate) fn block_current_on_mutex(&mut self, mutex: i64) {
        self.threads[self.current].state = ThreadState::BlockedOnMutex(mutex);
    }

    pub(crate) fn wake_mutex_waiters(&mut self, mutex: i64) {
        for t in &mut self.threads {
            if t.state == ThreadState::BlockedOnMutex(mutex) {
                t.state = ThreadState::Runnable;
            }
        }
    }

    pub(crate) fn mutex_state(&mut self, mutex: i64) -> &mut MutexState {
        self.mutexes.entry(mutex).or_default()
    }

    pub(crate) fn mutex_owner(&self, mutex: i64) -> Option<i64> {
        self.mutexes.get(&mutex).and_then(|m| m.owner)
    }

    pub(crate) fn set_mutex_owner(&mut self, mutex: i64, owner: Option<i64>) {
        self.mutex_state(mutex).owner = owner;
    }

    /// Run until the process exits, crashes, blocks, or `max_instructions`
    /// have executed across all threads.
    pub fn run(&mut self, handler: &mut dyn HookHandler, max_instructions: u64) -> RunExit {
        if let Some(exit) = &self.finished {
            return exit.clone();
        }
        let mut executed: u64 = 0;
        loop {
            // Find the next runnable thread, starting from the current one.
            let n = self.threads.len();
            let mut found = None;
            for i in 0..n {
                let idx = (self.current + i) % n;
                if self.threads[idx].state == ThreadState::Runnable {
                    found = Some(idx);
                    break;
                }
            }
            let Some(idx) = found else {
                let all_exited = self.threads.iter().all(|t| t.state == ThreadState::Exited);
                let exit = if all_exited {
                    RunExit::Exited(0)
                } else {
                    RunExit::Blocked
                };
                if all_exited {
                    self.finished = Some(exit.clone());
                }
                return exit;
            };
            self.current = idx;

            let mut quantum = self.config.quantum;
            while quantum > 0 && executed < max_instructions {
                match self.step(handler) {
                    None => {
                        quantum -= 1;
                        executed += 1;
                        if self.threads[self.current].state != ThreadState::Runnable {
                            break;
                        }
                    }
                    Some(exit) => {
                        match &exit {
                            RunExit::Exited(_) | RunExit::Fault(_) => {
                                self.finished = Some(exit.clone());
                            }
                            _ => {}
                        }
                        return exit;
                    }
                }
            }
            if executed >= max_instructions {
                return RunExit::Budget;
            }
            // Rotate to the next thread.
            self.current = (self.current + 1) % self.threads.len();
        }
    }

    /// Run with a generous default instruction budget.
    pub fn run_to_completion(&mut self, handler: &mut dyn HookHandler) -> RunExit {
        self.run(handler, 500_000_000)
    }

    /// Execute one instruction of the current thread. Returns `Some` when the
    /// whole process must stop.
    fn step(&mut self, handler: &mut dyn HookHandler) -> Option<RunExit> {
        let pc = self.threads[self.current].pc;
        let Some((module_idx, offset)) = self.image.find_code(pc) else {
            return Some(self.fault(FaultKind::BadPc { pc }));
        };
        let insn_index = (offset / INSN_SIZE) as usize;
        let Some(&insn) = self.image.modules[module_idx].insns.get(insn_index) else {
            return Some(self.fault(FaultKind::BadPc { pc }));
        };
        if self.record_coverage {
            let name = self.image.modules[module_idx].module.name.clone();
            self.coverage.record(&name, offset);
        }
        self.stats.instructions += 1;
        self.clock += 1;

        let mut next_pc = pc + INSN_SIZE;
        macro_rules! thread {
            () => {
                self.threads[self.current]
            };
        }

        match insn {
            Insn::Nop => {}
            Insn::Halt => {
                let code = thread!().reg(Reg::RET);
                return Some(RunExit::Exited(code));
            }
            Insn::Brk => return Some(self.fault(FaultKind::Break)),
            Insn::MovI { dst, imm } => thread!().set_reg(dst, imm),
            Insn::MovR { dst, src } => {
                let v = thread!().reg(src);
                thread!().set_reg(dst, v);
            }
            Insn::Load { dst, base, off } => {
                let addr = (thread!().reg(base).wrapping_add(off)) as Addr;
                match self.mem.read_word(addr) {
                    Ok(v) => thread!().set_reg(dst, v),
                    Err(_) => return Some(self.fault(FaultKind::MemAccess { addr })),
                }
            }
            Insn::Store { base, off, src } => {
                let addr = (thread!().reg(base).wrapping_add(off)) as Addr;
                let v = thread!().reg(src);
                if self.mem.write_word(addr, v).is_err() {
                    return Some(self.fault(FaultKind::MemAccess { addr }));
                }
            }
            Insn::Load8 { dst, base, off } => {
                let addr = (thread!().reg(base).wrapping_add(off)) as Addr;
                match self.mem.read_u8(addr) {
                    Ok(v) => thread!().set_reg(dst, v as Word),
                    Err(_) => return Some(self.fault(FaultKind::MemAccess { addr })),
                }
            }
            Insn::Store8 { base, off, src } => {
                let addr = (thread!().reg(base).wrapping_add(off)) as Addr;
                let v = thread!().reg(src) as u8;
                if self.mem.write_u8(addr, v).is_err() {
                    return Some(self.fault(FaultKind::MemAccess { addr }));
                }
            }
            Insn::Lea { dst, base, off } => {
                let v = thread!().reg(base).wrapping_add(off);
                thread!().set_reg(dst, v);
            }
            Insn::LeaSym { dst, sym } => {
                let resolution = self.image.resolution(module_idx, sym).clone();
                let value = match resolution {
                    Resolution::Data { addr } | Resolution::Func { addr } => addr as Word,
                    Resolution::Hooked {
                        original: Some(addr),
                        ..
                    } => addr as Word,
                    Resolution::Tls { .. }
                    | Resolution::Hooked { original: None, .. }
                    | Resolution::Unresolved { .. } => {
                        let name = self.image.modules[module_idx].module.symrefs[sym as usize]
                            .name
                            .clone();
                        return Some(self.fault(FaultKind::UnresolvedSymbol { name }));
                    }
                };
                thread!().set_reg(dst, value);
            }
            Insn::Push { src } => {
                let sp = (thread!().reg(Reg::Sp) - 8) as Addr;
                let v = thread!().reg(src);
                if self.mem.write_word(sp, v).is_err() {
                    return Some(self.fault(FaultKind::StackOverflow));
                }
                thread!().set_reg(Reg::Sp, sp as Word);
            }
            Insn::Pop { dst } => {
                let sp = thread!().reg(Reg::Sp) as Addr;
                match self.mem.read_word(sp) {
                    Ok(v) => {
                        thread!().set_reg(dst, v);
                        thread!().set_reg(Reg::Sp, (sp + 8) as Word);
                    }
                    Err(_) => return Some(self.fault(FaultKind::MemAccess { addr: sp })),
                }
            }
            Insn::Alu { op, dst, src } => {
                let a = thread!().reg(dst);
                let b = thread!().reg(src);
                match alu(op, a, b) {
                    Some(v) => thread!().set_reg(dst, v),
                    None => return Some(self.fault(FaultKind::DivideByZero)),
                }
            }
            Insn::AluI { op, dst, imm } => {
                let a = thread!().reg(dst);
                match alu(op, a, imm) {
                    Some(v) => thread!().set_reg(dst, v),
                    None => return Some(self.fault(FaultKind::DivideByZero)),
                }
            }
            Insn::Neg { dst } => {
                let v = thread!().reg(dst);
                thread!().set_reg(dst, v.wrapping_neg());
            }
            Insn::Not { dst } => {
                let v = thread!().reg(dst);
                thread!().set_reg(dst, !v);
            }
            Insn::Cmp { a, b } => {
                let va = thread!().reg(a);
                let vb = thread!().reg(b);
                thread!().flags = va.cmp(&vb);
            }
            Insn::CmpI { a, imm } => {
                let va = thread!().reg(a);
                thread!().flags = va.cmp(&imm);
            }
            Insn::Jmp { target } => {
                next_pc = self.image.modules[module_idx].code_addr(target as u64);
            }
            Insn::J { cond, target } => {
                if cond.holds(thread!().flags) {
                    next_pc = self.image.modules[module_idx].code_addr(target as u64);
                }
            }
            Insn::Call { target } => {
                let callee = self.image.modules[module_idx].code_addr(target as u64);
                self.stats.calls += 1;
                thread!().frames.push(ShadowFrame {
                    call_site_module: module_idx,
                    call_site_offset: offset,
                    return_addr: next_pc,
                });
                next_pc = callee;
            }
            Insn::CallR { reg } => {
                let callee = thread!().reg(reg) as Addr;
                if self.image.find_code(callee).is_none() {
                    return Some(self.fault(FaultKind::BadPc { pc: callee }));
                }
                self.stats.calls += 1;
                thread!().frames.push(ShadowFrame {
                    call_site_module: module_idx,
                    call_site_offset: offset,
                    return_addr: next_pc,
                });
                next_pc = callee;
            }
            Insn::CallSym { sym } => {
                self.stats.calls += 1;
                let resolution = self.image.resolution(module_idx, sym).clone();
                match resolution {
                    Resolution::Func { addr } => {
                        thread!().frames.push(ShadowFrame {
                            call_site_module: module_idx,
                            call_site_offset: offset,
                            return_addr: next_pc,
                        });
                        next_pc = addr;
                    }
                    Resolution::Hooked { name, original } => {
                        self.stats.hooked_calls += 1;
                        let action = {
                            let mut ctx = CallContext {
                                machine: self,
                                call_site_module: module_idx,
                                call_site_offset: offset,
                            };
                            handler.on_call(&name, &mut ctx)
                        };
                        match action {
                            HookAction::Forward => match original {
                                Some(addr) => {
                                    thread!().frames.push(ShadowFrame {
                                        call_site_module: module_idx,
                                        call_site_offset: offset,
                                        return_addr: next_pc,
                                    });
                                    next_pc = addr;
                                }
                                None => {
                                    return Some(self.fault(FaultKind::UnresolvedSymbol { name }))
                                }
                            },
                            HookAction::Return { value, errno } => {
                                thread!().set_reg(Reg::RET, value);
                                if let Some(e) = errno {
                                    thread!().tls.insert(CallConv::ERRNO_SYMBOL.to_string(), e);
                                }
                            }
                            HookAction::Pause => {
                                // Roll back this instruction's bookkeeping and
                                // leave the PC on the call: a machine resumed
                                // (or restored from a snapshot taken here)
                                // re-executes the call as if it had never run,
                                // so the next handler observes it first-hand.
                                self.stats.instructions -= 1;
                                self.stats.calls -= 1;
                                self.stats.hooked_calls -= 1;
                                self.clock -= 1;
                                return Some(RunExit::Paused);
                            }
                        }
                    }
                    Resolution::Unresolved { name } => {
                        return Some(self.fault(FaultKind::UnresolvedSymbol { name }))
                    }
                    Resolution::Data { .. } | Resolution::Tls { .. } => {
                        let name = self.image.modules[module_idx].module.symrefs[sym as usize]
                            .name
                            .clone();
                        return Some(self.fault(FaultKind::UnresolvedSymbol { name }));
                    }
                }
            }
            Insn::Ret => {
                let frame = thread!().frames.pop();
                match frame {
                    Some(f) if f.return_addr != RETURN_SENTINEL => next_pc = f.return_addr,
                    _ => {
                        // Bottom of the thread: the main thread returning ends
                        // the process; other threads just exit.
                        if thread!().id == 1 {
                            let code = thread!().reg(Reg::RET);
                            return Some(RunExit::Exited(code));
                        }
                        self.exit_current_thread();
                        thread!().pc = pc;
                        return None;
                    }
                }
            }
            Insn::TlsLoad { dst, sym } => {
                let name = self.tls_name(module_idx, sym);
                let v = thread!().tls.get(&name).copied().unwrap_or(0);
                thread!().set_reg(dst, v);
            }
            Insn::TlsStore { sym, src } => {
                let name = self.tls_name(module_idx, sym);
                let v = thread!().reg(src);
                thread!().tls.insert(name, v);
            }
            Insn::Sys { num } => {
                self.stats.syscalls += 1;
                match self.syscall(num) {
                    SysOutcome::Done(value) => thread!().set_reg(Reg::RET, value),
                    SysOutcome::Block(mutex) => {
                        self.block_current_on_mutex(mutex);
                        // Re-execute the syscall when rescheduled.
                        thread!().pc = pc;
                        return None;
                    }
                    SysOutcome::Exit(exit) => return Some(exit),
                }
            }
        }

        self.threads[self.current].pc = next_pc;
        None
    }

    fn tls_name(&self, module_idx: usize, sym: u32) -> String {
        match self.image.resolution(module_idx, sym) {
            Resolution::Tls { name } => name.clone(),
            _ => self.image.modules[module_idx].module.symrefs[sym as usize]
                .name
                .clone(),
        }
    }

    pub(crate) fn current_reg(&self, reg: Reg) -> Word {
        self.threads[self.current].reg(reg)
    }

    pub(crate) fn make_fault(&self, kind: FaultKind) -> RunExit {
        self.fault(kind)
    }
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("threads", &self.threads.len())
            .field("clock", &self.clock)
            .field("instructions", &self.stats.instructions)
            .field("finished", &self.finished)
            .finish()
    }
}

/// A restorable capture of a [`Machine`]'s complete state, taken with
/// [`Machine::snapshot`].
///
/// A snapshot owns an independent copy of all mutable process state
/// (memory pages are shared copy-on-write with whoever else holds them; the
/// loaded image is shared outright). [`MachineSnapshot::fork`] mints any
/// number of isolated machines from one snapshot — the mechanism behind
/// snapshot-fork campaign execution, where the workload prefix up to the
/// first injectable call is executed once and every fault-injection run
/// resumes from it.
pub struct MachineSnapshot {
    machine: Machine,
}

impl MachineSnapshot {
    /// Create a new, fully isolated machine resuming from this snapshot.
    pub fn fork(&self) -> Machine {
        self.machine.duplicate()
    }

    /// Execution statistics at the snapshot point (e.g. instructions already
    /// consumed by the shared prefix, for budget accounting in forks).
    pub fn stats(&self) -> ExecStats {
        self.machine.stats
    }

    /// Virtual time at the snapshot point.
    pub fn clock(&self) -> u64 {
        self.machine.clock
    }

    /// Whether the captured process had already terminated — i.e. the run
    /// never reached a pause point. Forks of a finished snapshot return the
    /// terminal exit immediately.
    pub fn is_finished(&self) -> bool {
        self.machine.finished.is_some()
    }

    /// An upper-bound estimate of the bytes this snapshot keeps resident:
    /// mapped memory (counted in full, although copy-on-write pages may be
    /// physically shared with related snapshots), filesystem contents, and
    /// captured program output. Session caches use this to enforce an LRU
    /// byte budget on resident snapshot-tree nodes.
    pub fn resident_bytes(&self) -> u64 {
        self.machine.mem.mapped_bytes()
            + self.machine.fs.total_bytes()
            + self.machine.output.len() as u64
    }
}

impl fmt::Debug for MachineSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MachineSnapshot")
            .field("clock", &self.machine.clock)
            .field("instructions", &self.machine.stats.instructions)
            .field("finished", &self.machine.finished)
            .finish()
    }
}

fn alu(op: AluOp, a: Word, b: Word) -> Option<Word> {
    Some(match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        AluOp::Mod => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl((b & 63) as u32),
        AluOp::Shr => a.wrapping_shr((b & 63) as u32),
    })
}

/// Machine state exposed to an interposition hook at an intercepted call.
///
/// This is the information the paper's triggers inspect: the intercepted
/// function's arguments, the call stack, program globals, thread identity,
/// held mutexes, file-descriptor properties, and virtual time.
pub struct CallContext<'m> {
    machine: &'m mut Machine,
    call_site_module: usize,
    call_site_offset: u64,
}

impl CallContext<'_> {
    /// The first `n` arguments of the intercepted call (register arguments).
    pub fn args(&self, n: usize) -> Vec<Word> {
        CallConv::ARGUMENTS
            .iter()
            .take(n.min(CallConv::MAX_REG_ARGS))
            .map(|&r| self.machine.current_reg(r))
            .collect()
    }

    /// A single argument by position.
    pub fn arg(&self, index: usize) -> Word {
        if index < CallConv::MAX_REG_ARGS {
            self.machine.current_reg(CallConv::ARGUMENTS[index])
        } else {
            0
        }
    }

    /// Module name and code offset of the call site.
    pub fn call_site(&self) -> (&str, u64) {
        (
            self.machine.image.modules[self.call_site_module]
                .module
                .name
                .as_str(),
            self.call_site_offset,
        )
    }

    /// Source file and line of the call site, if debug info is available.
    pub fn call_site_source(&self) -> Option<(String, u32)> {
        self.machine.image.modules[self.call_site_module]
            .module
            .line_for_offset(self.call_site_offset)
            .map(|(f, l)| (f.to_string(), l))
    }

    /// Name of the function containing the call site.
    pub fn caller_function(&self) -> Option<String> {
        self.machine.image.modules[self.call_site_module]
            .module
            .containing_function(self.call_site_offset)
            .map(|e| e.name.clone())
    }

    /// Full symbolized backtrace, innermost call site first.
    pub fn backtrace(&self) -> Vec<Frame> {
        let mut frames = self.machine.backtrace();
        // The interposed call itself is not yet on the shadow stack; add it
        // so call-stack triggers can match the innermost frame.
        frames.insert(
            0,
            Frame {
                module: self.machine.image.modules[self.call_site_module]
                    .module
                    .name
                    .clone(),
                offset: self.call_site_offset,
                function: self.caller_function(),
                source: self.call_site_source(),
            },
        );
        frames
    }

    /// Read an exported global variable.
    pub fn read_global(&self, name: &str) -> Option<Word> {
        self.machine.read_global(name)
    }

    /// Read a word of process memory (for triggers that chase pointers).
    pub fn read_word(&self, addr: Addr) -> Option<Word> {
        self.machine.read_word(addr)
    }

    /// Read a C string from process memory (e.g. a path argument).
    pub fn read_cstring(&self, addr: Addr) -> Option<String> {
        self.machine.read_cstring(addr)
    }

    /// Kind of the file behind a descriptor argument.
    pub fn fd_kind(&self, fd: Word) -> Option<Word> {
        self.machine.fd_kind(fd)
    }

    /// Id of the calling thread.
    pub fn thread_id(&self) -> i64 {
        self.machine.current_thread()
    }

    /// Number of mutexes held by the calling thread.
    pub fn mutexes_held(&self) -> usize {
        self.machine.mutexes_held_by(self.machine.current_thread())
    }

    /// Current virtual time.
    pub fn clock(&self) -> u64 {
        self.machine.clock()
    }

    /// Current errno value of the calling thread.
    pub fn errno(&self) -> Word {
        self.machine.errno()
    }

    /// Charge extra virtual time for trigger evaluation.
    pub fn add_cost(&mut self, ticks: u64) {
        self.machine.add_cost(ticks);
    }

    /// Node id of the process (for distributed triggers).
    pub fn node_id(&self) -> i64 {
        self.machine.node_id()
    }
}
