//! Syscall layer: the boundary between the simulated libc and the VM.
//!
//! The convention mirrors Linux: arguments arrive in `r1..r6`, the result is
//! returned in `r0`, failures are negative errno values. The simulated libc
//! translates them into `-1` + `errno`, which is the surface LFI injects at.

use lfi_arch::{abi::fcntlcmd, abi::filekind, abi::openflags, errno, sys, Addr, Reg, Word};
use rand::Rng;

use crate::machine::{FaultKind, FdEntry, Machine, RunExit, SysOutcome};
use crate::mem::PAGE_SIZE;
use crate::net::Datagram;

/// Virtual-time cost of a syscall, in ticks.
fn syscall_cost(num: Word) -> u64 {
    match num {
        sys::READ | sys::WRITE | sys::OPEN | sys::CLOSE | sys::LSEEK | sys::TRUNCATE => 100,
        sys::SENDTO | sys::RECVFROM => 150,
        sys::OPENDIR | sys::READDIR | sys::CLOSEDIR | sys::STAT | sys::FSTAT => 80,
        sys::UNLINK | sys::MKDIR | sys::RENAME | sys::SYMLINK | sys::READLINK => 80,
        sys::SBRK => 40,
        _ => 20,
    }
}

impl Machine {
    fn arg(&self, index: usize) -> Word {
        self.current_reg(Reg::ARGS[index])
    }

    fn read_path(&self, addr: Word) -> Result<String, Word> {
        if addr == 0 {
            return Err(-errno::EINVAL);
        }
        self.mem
            .read_cstring(addr as Addr, 4096)
            .map_err(|_| -errno::EINVAL)
    }

    fn alloc_fd(&mut self, entry: FdEntry) -> Word {
        for (i, slot) in self.fds.iter_mut().enumerate().skip(3) {
            if slot.is_none() {
                *slot = Some(entry);
                return i as Word;
            }
        }
        self.fds.push(Some(entry));
        (self.fds.len() - 1) as Word
    }

    pub(crate) fn syscall(&mut self, num: Word) -> SysOutcome {
        self.clock += syscall_cost(num);
        match num {
            sys::EXIT => SysOutcome::Exit(RunExit::Exited(self.arg(0))),
            sys::ABORT => SysOutcome::Exit(self.make_fault(FaultKind::Abort)),
            sys::OPEN => SysOutcome::Done(self.sys_open()),
            sys::CLOSE => SysOutcome::Done(self.sys_close()),
            sys::READ => SysOutcome::Done(self.sys_read()),
            sys::WRITE => SysOutcome::Done(self.sys_write()),
            sys::LSEEK => SysOutcome::Done(self.sys_lseek()),
            sys::FSTAT => SysOutcome::Done(self.sys_fstat()),
            sys::STAT => SysOutcome::Done(self.sys_stat()),
            sys::UNLINK => SysOutcome::Done(self.sys_unlink()),
            sys::MKDIR => SysOutcome::Done(self.sys_mkdir()),
            sys::OPENDIR => SysOutcome::Done(self.sys_opendir()),
            sys::READDIR => SysOutcome::Done(self.sys_readdir()),
            sys::CLOSEDIR => SysOutcome::Done(self.sys_close()),
            sys::READLINK => SysOutcome::Done(self.sys_readlink()),
            sys::SYMLINK => SysOutcome::Done(self.sys_symlink()),
            sys::RENAME => SysOutcome::Done(self.sys_rename()),
            sys::TRUNCATE => SysOutcome::Done(self.sys_truncate()),
            sys::SBRK => SysOutcome::Done(self.sys_sbrk()),
            sys::SETENV => SysOutcome::Done(self.sys_setenv()),
            sys::GETENV => SysOutcome::Done(self.sys_getenv()),
            sys::SOCKET => SysOutcome::Done(self.alloc_fd(FdEntry::Socket {
                port: None,
                flags: 0,
            })),
            sys::BIND => SysOutcome::Done(self.sys_bind()),
            sys::SENDTO => SysOutcome::Done(self.sys_sendto()),
            sys::RECVFROM => SysOutcome::Done(self.sys_recvfrom()),
            sys::FCNTL => SysOutcome::Done(self.sys_fcntl()),
            sys::GETTIME => SysOutcome::Done(self.clock as Word),
            sys::RANDOM => SysOutcome::Done((self.rng.gen::<u32>() >> 1) as Word),
            sys::THREAD_CREATE => self.sys_thread_create(),
            sys::THREAD_EXIT => {
                self.exit_current_thread();
                SysOutcome::Done(0)
            }
            sys::YIELD => SysOutcome::Done(0),
            sys::MUTEX_INIT => {
                let id = self.arg(0);
                self.mutex_state(id);
                SysOutcome::Done(0)
            }
            sys::MUTEX_LOCK => self.sys_mutex_lock(),
            sys::MUTEX_UNLOCK => self.sys_mutex_unlock(),
            other => SysOutcome::Exit(self.make_fault(FaultKind::BadSyscall { num: other })),
        }
    }

    fn sys_open(&mut self) -> Word {
        let path = match self.read_path(self.arg(0)) {
            Ok(p) => p,
            Err(e) => return e,
        };
        let flags = self.arg(1);
        let exists = self.fs.exists(&path);
        if !exists {
            if flags & openflags::CREAT != 0 {
                if let Err(e) = self.fs.write_file(&path, b"") {
                    return -e.errno();
                }
            } else {
                return -errno::ENOENT;
            }
        } else if flags & openflags::TRUNC != 0 {
            if let Err(e) = self.fs.truncate(&path, 0) {
                return -e.errno();
            }
        }
        if let Ok((kind, _)) = self.fs.stat(&path) {
            if kind == filekind::DIRECTORY && flags & (openflags::WRONLY | openflags::RDWR) != 0 {
                return -errno::EISDIR;
            }
        }
        let pos = if flags & openflags::APPEND != 0 {
            self.fs.file_len(&path).unwrap_or(0)
        } else {
            0
        };
        self.alloc_fd(FdEntry::File { path, pos, flags })
    }

    fn sys_close(&mut self) -> Word {
        let fd = self.arg(0);
        if fd < 0 {
            return -errno::EBADF;
        }
        match self.fds.get_mut(fd as usize) {
            Some(slot @ Some(_)) => {
                *slot = None;
                0
            }
            _ => -errno::EBADF,
        }
    }

    fn sys_read(&mut self) -> Word {
        let (fd, buf, count) = (self.arg(0), self.arg(1), self.arg(2).max(0) as usize);
        let entry = match self.fds.get(fd.max(0) as usize).and_then(|e| e.clone()) {
            Some(e) => e,
            None => return -errno::EBADF,
        };
        match entry {
            FdEntry::File { path, pos, .. } => {
                let data = match self.fs.read_at(&path, pos, count) {
                    Ok(d) => d,
                    Err(e) => return -e.errno(),
                };
                if !data.is_empty() && self.mem.write_bytes(buf as Addr, &data).is_err() {
                    return -errno::EINVAL;
                }
                if let Some(Some(FdEntry::File { pos: p, .. })) = self.fds.get_mut(fd as usize) {
                    *p += data.len() as u64;
                }
                data.len() as Word
            }
            FdEntry::Socket { port, .. } => self.socket_recv(port, buf, count, 0),
            FdEntry::Dir { .. } => -errno::EISDIR,
            FdEntry::Stdout | FdEntry::Stderr => -errno::EBADF,
        }
    }

    fn sys_write(&mut self) -> Word {
        let (fd, buf, count) = (self.arg(0), self.arg(1), self.arg(2).max(0) as usize);
        let entry = match self.fds.get(fd.max(0) as usize).and_then(|e| e.clone()) {
            Some(e) => e,
            None => return -errno::EBADF,
        };
        let mut bytes = vec![0u8; count];
        if count > 0 && self.mem.read_bytes(buf as Addr, &mut bytes).is_err() {
            return -errno::EINVAL;
        }
        match entry {
            FdEntry::Stdout | FdEntry::Stderr => {
                self.output.extend_from_slice(&bytes);
                count as Word
            }
            FdEntry::File { path, pos, flags } => {
                let write_pos = if flags & openflags::APPEND != 0 {
                    self.fs.file_len(&path).unwrap_or(pos)
                } else {
                    pos
                };
                match self.fs.write_at(&path, write_pos, &bytes) {
                    Ok(n) => {
                        if let Some(Some(FdEntry::File { pos: p, .. })) =
                            self.fds.get_mut(fd as usize)
                        {
                            *p = write_pos + n as u64;
                        }
                        n as Word
                    }
                    Err(e) => -e.errno(),
                }
            }
            FdEntry::Socket { .. } => -errno::EINVAL,
            FdEntry::Dir { .. } => -errno::EISDIR,
        }
    }

    fn sys_lseek(&mut self) -> Word {
        let (fd, offset, whence) = (self.arg(0), self.arg(1), self.arg(2));
        let len = match self.fds.get(fd.max(0) as usize).and_then(|e| e.clone()) {
            Some(FdEntry::File { path, .. }) => self.fs.file_len(&path).unwrap_or(0),
            Some(_) => return -errno::EINVAL,
            None => return -errno::EBADF,
        };
        let Some(Some(FdEntry::File { pos, .. })) = self.fds.get_mut(fd as usize) else {
            return -errno::EBADF;
        };
        let new_pos = match whence {
            0 => offset,
            1 => *pos as Word + offset,
            2 => len as Word + offset,
            _ => return -errno::EINVAL,
        };
        if new_pos < 0 {
            return -errno::EINVAL;
        }
        *pos = new_pos as u64;
        new_pos
    }

    fn write_stat(&mut self, buf: Word, kind: i64, size: i64) -> Word {
        if self.mem.write_word(buf as Addr, kind).is_err()
            || self.mem.write_word(buf as Addr + 8, size).is_err()
        {
            return -errno::EINVAL;
        }
        0
    }

    fn sys_fstat(&mut self) -> Word {
        let (fd, buf) = (self.arg(0), self.arg(1));
        let (kind, size) = match self.fds.get(fd.max(0) as usize).and_then(|e| e.clone()) {
            Some(FdEntry::File { path, .. }) => match self.fs.stat(&path) {
                Ok(ks) => ks,
                Err(e) => return -e.errno(),
            },
            Some(FdEntry::Socket { .. }) => (filekind::SOCKET, 0),
            Some(FdEntry::Dir { entries, .. }) => (filekind::DIRECTORY, entries.len() as i64),
            Some(FdEntry::Stdout | FdEntry::Stderr) => (filekind::REGULAR, 0),
            None => return -errno::EBADF,
        };
        self.write_stat(buf, kind, size)
    }

    fn sys_stat(&mut self) -> Word {
        let path = match self.read_path(self.arg(0)) {
            Ok(p) => p,
            Err(e) => return e,
        };
        match self.fs.stat(&path) {
            Ok((kind, size)) => self.write_stat(self.arg(1), kind, size),
            Err(e) => -e.errno(),
        }
    }

    fn sys_unlink(&mut self) -> Word {
        match self.read_path(self.arg(0)) {
            Ok(path) => match self.fs.unlink(&path) {
                Ok(()) => 0,
                Err(e) => -e.errno(),
            },
            Err(e) => e,
        }
    }

    fn sys_mkdir(&mut self) -> Word {
        match self.read_path(self.arg(0)) {
            Ok(path) => match self.fs.mkdir(&path) {
                Ok(()) => 0,
                Err(e) => -e.errno(),
            },
            Err(e) => e,
        }
    }

    fn sys_opendir(&mut self) -> Word {
        let path = match self.read_path(self.arg(0)) {
            Ok(p) => p,
            Err(e) => return e,
        };
        match self.fs.list_dir(&path) {
            Ok(mut entries) => {
                entries.sort();
                self.alloc_fd(FdEntry::Dir { entries, pos: 0 })
            }
            Err(e) => -e.errno(),
        }
    }

    fn sys_readdir(&mut self) -> Word {
        let (fd, buf, cap) = (self.arg(0), self.arg(1), self.arg(2).max(0) as usize);
        let name = match self.fds.get_mut(fd.max(0) as usize) {
            Some(Some(FdEntry::Dir { entries, pos })) => {
                if *pos >= entries.len() {
                    return 0;
                }
                let name = entries[*pos].clone();
                *pos += 1;
                name
            }
            Some(Some(_)) => return -errno::ENOTDIR,
            _ => return -errno::EBADF,
        };
        if cap == 0 {
            return -errno::EINVAL;
        }
        let truncated: String = name.chars().take(cap - 1).collect();
        if self.mem.write_cstring(buf as Addr, &truncated).is_err() {
            return -errno::EINVAL;
        }
        truncated.len() as Word
    }

    fn sys_readlink(&mut self) -> Word {
        let (path, buf, cap) = (self.arg(0), self.arg(1), self.arg(2).max(0) as usize);
        let path = match self.read_path(path) {
            Ok(p) => p,
            Err(e) => return e,
        };
        match self.fs.readlink(&path) {
            Ok(target) => {
                let truncated: String = target.chars().take(cap.saturating_sub(1)).collect();
                if self.mem.write_cstring(buf as Addr, &truncated).is_err() {
                    return -errno::EINVAL;
                }
                truncated.len() as Word
            }
            Err(e) => -e.errno(),
        }
    }

    fn sys_symlink(&mut self) -> Word {
        let target = match self.read_path(self.arg(0)) {
            Ok(p) => p,
            Err(e) => return e,
        };
        let link = match self.read_path(self.arg(1)) {
            Ok(p) => p,
            Err(e) => return e,
        };
        match self.fs.symlink(&target, &link) {
            Ok(()) => 0,
            Err(e) => -e.errno(),
        }
    }

    fn sys_rename(&mut self) -> Word {
        let old = match self.read_path(self.arg(0)) {
            Ok(p) => p,
            Err(e) => return e,
        };
        let new = match self.read_path(self.arg(1)) {
            Ok(p) => p,
            Err(e) => return e,
        };
        match self.fs.rename(&old, &new) {
            Ok(()) => 0,
            Err(e) => -e.errno(),
        }
    }

    fn sys_truncate(&mut self) -> Word {
        let path = match self.read_path(self.arg(0)) {
            Ok(p) => p,
            Err(e) => return e,
        };
        match self.fs.truncate(&path, self.arg(1).max(0) as u64) {
            Ok(()) => 0,
            Err(e) => -e.errno(),
        }
    }

    fn sys_sbrk(&mut self) -> Word {
        let grow = self.arg(0);
        let old = self.heap_brk;
        if grow <= 0 {
            return old as Word;
        }
        let new = old + grow as u64;
        if new > crate::machine::HEAP_BASE + self.heap_limit {
            return -errno::ENOMEM;
        }
        self.mem.map_region(old, grow as u64 + PAGE_SIZE);
        self.heap_brk = new;
        old as Word
    }

    fn sys_setenv(&mut self) -> Word {
        let name = match self.read_path(self.arg(0)) {
            Ok(p) => p,
            Err(e) => return e,
        };
        let value = match self.read_path(self.arg(1)) {
            Ok(p) => p,
            Err(e) => return e,
        };
        self.env.insert(name, value);
        0
    }

    fn sys_getenv(&mut self) -> Word {
        let name = match self.read_path(self.arg(0)) {
            Ok(p) => p,
            Err(e) => return e,
        };
        let (buf, cap) = (self.arg(1), self.arg(2).max(0) as usize);
        let Some(value) = self.env.get(&name).cloned() else {
            return -errno::ENOENT;
        };
        let truncated: String = value.chars().take(cap.saturating_sub(1)).collect();
        if self.mem.write_cstring(buf as Addr, &truncated).is_err() {
            return -errno::EINVAL;
        }
        value.len() as Word
    }

    fn sys_bind(&mut self) -> Word {
        let (fd, port) = (self.arg(0), self.arg(1));
        let node = self.node_id;
        match self.fds.get_mut(fd.max(0) as usize) {
            Some(Some(FdEntry::Socket { port: p, .. })) => {
                *p = Some(port);
                if let Some(net) = &self.net {
                    net.bind(node, port);
                }
                0
            }
            Some(Some(_)) => -errno::EINVAL,
            _ => -errno::EBADF,
        }
    }

    fn sys_sendto(&mut self) -> Word {
        let (fd, buf, len) = (self.arg(0), self.arg(1), self.arg(2).max(0) as usize);
        let (to_node, to_port) = (self.arg(3), self.arg(4));
        let from_port = match self.fds.get(fd.max(0) as usize).and_then(|e| e.clone()) {
            Some(FdEntry::Socket { port, .. }) => port.unwrap_or(0),
            Some(_) => return -errno::EINVAL,
            None => return -errno::EBADF,
        };
        let mut payload = vec![0u8; len];
        if len > 0 && self.mem.read_bytes(buf as Addr, &mut payload).is_err() {
            return -errno::EINVAL;
        }
        let Some(net) = &self.net else {
            return -errno::ECONNREFUSED;
        };
        net.send(Datagram {
            from_node: self.node_id,
            from_port,
            to_node,
            to_port,
            payload,
        });
        len as Word
    }

    fn socket_recv(&mut self, port: Option<i64>, buf: Word, cap: usize, srcinfo: Word) -> Word {
        let Some(port) = port else {
            return -errno::EINVAL;
        };
        let Some(net) = &self.net else {
            return -errno::EAGAIN;
        };
        let Some(datagram) = net.recv(self.node_id, port) else {
            return -errno::EAGAIN;
        };
        let n = datagram.payload.len().min(cap);
        if n > 0
            && self
                .mem
                .write_bytes(buf as Addr, &datagram.payload[..n])
                .is_err()
        {
            return -errno::EINVAL;
        }
        if srcinfo != 0 {
            let ok = self
                .mem
                .write_word(srcinfo as Addr, datagram.from_node)
                .and_then(|_| self.mem.write_word(srcinfo as Addr + 8, datagram.from_port));
            if ok.is_err() {
                return -errno::EINVAL;
            }
        }
        n as Word
    }

    fn sys_recvfrom(&mut self) -> Word {
        let (fd, buf, cap, srcinfo) = (
            self.arg(0),
            self.arg(1),
            self.arg(2).max(0) as usize,
            self.arg(3),
        );
        match self.fds.get(fd.max(0) as usize).and_then(|e| e.clone()) {
            Some(FdEntry::Socket { port, .. }) => self.socket_recv(port, buf, cap, srcinfo),
            Some(_) => -errno::EINVAL,
            None => -errno::EBADF,
        }
    }

    fn sys_fcntl(&mut self) -> Word {
        let (fd, cmd, arg) = (self.arg(0), self.arg(1), self.arg(2));
        match self.fds.get_mut(fd.max(0) as usize) {
            Some(Some(FdEntry::File { flags, .. } | FdEntry::Socket { flags, .. })) => match cmd {
                fcntlcmd::GETFL => *flags,
                fcntlcmd::SETFL => {
                    *flags = arg;
                    0
                }
                fcntlcmd::GETLK | fcntlcmd::SETLK => 0,
                _ => -errno::EINVAL,
            },
            Some(Some(_)) => match cmd {
                fcntlcmd::GETFL => 0,
                fcntlcmd::GETLK | fcntlcmd::SETLK => 0,
                _ => -errno::EINVAL,
            },
            _ => -errno::EBADF,
        }
    }

    fn sys_thread_create(&mut self) -> SysOutcome {
        let (entry, arg) = (self.arg(0), self.arg(1));
        if self.image.find_code(entry as Addr).is_none() {
            return SysOutcome::Done(-errno::EINVAL);
        }
        let tid = self.spawn_thread(entry as Addr, arg);
        SysOutcome::Done(tid)
    }

    fn sys_mutex_lock(&mut self) -> SysOutcome {
        let id = self.arg(0);
        let me = self.current_thread();
        match self.mutex_owner(id) {
            None => {
                self.set_mutex_owner(id, Some(me));
                SysOutcome::Done(0)
            }
            Some(owner) if owner == me => SysOutcome::Done(-errno::EPERM),
            Some(_) => SysOutcome::Block(id),
        }
    }

    fn sys_mutex_unlock(&mut self) -> SysOutcome {
        let id = self.arg(0);
        let me = self.current_thread();
        match self.mutex_owner(id) {
            Some(owner) if owner == me => {
                self.set_mutex_owner(id, None);
                self.wake_mutex_waiters(id);
                SysOutcome::Done(0)
            }
            // Unlocking a mutex that is not held (or held by another thread)
            // is fatal, like glibc's error-checking mutexes: this is how the
            // MySQL double-unlock bug from Table 1 crashes the process.
            _ => SysOutcome::Exit(self.make_fault(FaultKind::DoubleUnlock)),
        }
    }
}
