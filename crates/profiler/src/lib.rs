//! Library fault profiler.
//!
//! The profiler performs the task described in §2 of the paper: it analyzes a
//! shared library's *binary* and infers, for every exported function, which
//! error values the function can return and which `errno` side effects
//! accompany them. The result — the library's **fault profile** — drives both
//! the call-site analyzer (which needs the set of error codes to check
//! against) and scenario generation (which needs a realistic return value and
//! errno to inject).
//!
//! The analysis is a linear abstract scan of each function's instructions: it
//! tracks the last constant loaded into each register, pairs constants stored
//! to the TLS `errno` variable with the next constant return value on the
//! same path, and records whether the function can also return a
//! non-constant (computed) value. This mirrors the heuristic static analysis
//! of the original LFI profiler, which the paper reports to be accurate in
//! practice despite being intraprocedural and path-insensitive.

use std::collections::BTreeMap;

use lfi_arch::{CallConv, Insn, Reg, Word};
use lfi_json::{JsonError, Value};
use lfi_obj::{Module, SymKind};
use serde::{Deserialize, Serialize};

/// One way a function can fail: a return value and an optional errno.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ErrorCase {
    /// The value returned to the caller (e.g. `-1`, or `0` for NULL).
    pub retval: Word,
    /// The errno value set alongside, if the path sets one.
    pub errno: Option<Word>,
}

/// The fault profile of one exported function.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionProfile {
    /// Function name.
    pub name: String,
    /// Distinct error cases discovered in the binary.
    pub error_cases: Vec<ErrorCase>,
    /// Whether the function can also return a computed (non-constant) value —
    /// i.e. it has a success path whose value the analysis cannot enumerate.
    pub returns_dynamic: bool,
}

impl FunctionProfile {
    /// The distinct error return values (the set `E` of Algorithm 1).
    pub fn error_return_values(&self) -> Vec<Word> {
        let mut values: Vec<Word> = self.error_cases.iter().map(|c| c.retval).collect();
        values.sort_unstable();
        values.dedup();
        values
    }

    /// The distinct errno values this function can set.
    pub fn errno_values(&self) -> Vec<Word> {
        let mut values: Vec<Word> = self.error_cases.iter().filter_map(|c| c.errno).collect();
        values.sort_unstable();
        values.dedup();
        values
    }

    /// A representative injection: the most common error return paired with
    /// one of its errno values (used when generating scenarios automatically).
    pub fn representative_case(&self) -> Option<ErrorCase> {
        self.error_cases
            .iter()
            .find(|c| c.errno.is_some())
            .or_else(|| self.error_cases.first())
            .copied()
    }
}

/// The fault profile of a whole library.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Library (module) name.
    pub library: String,
    /// Per-function profiles, keyed by function name.
    pub functions: BTreeMap<String, FunctionProfile>,
}

impl FaultProfile {
    /// Profile of a single function, if it was exported by the library.
    pub fn function(&self, name: &str) -> Option<&FunctionProfile> {
        self.functions.get(name)
    }

    /// Iterate over every per-function profile, in function-name order.
    pub fn iter(&self) -> impl Iterator<Item = &FunctionProfile> {
        self.functions.values()
    }

    /// Iterate over the profiles of functions that can fail — the injectable
    /// fault points a campaign enumerates its fault space from.
    pub fn failing(&self) -> impl Iterator<Item = &FunctionProfile> {
        self.iter().filter(|f| !f.error_cases.is_empty())
    }

    /// Names of all profiled functions that have at least one error case.
    pub fn failing_functions(&self) -> Vec<String> {
        self.functions
            .values()
            .filter(|f| !f.error_cases.is_empty())
            .map(|f| f.name.clone())
            .collect()
    }

    /// Serialize to a pretty JSON document (the analogue of the paper's XML
    /// fault-profile files).
    pub fn to_json(&self) -> String {
        let functions = self
            .functions
            .iter()
            .map(|(name, f)| {
                let cases = f
                    .error_cases
                    .iter()
                    .map(|c| {
                        Value::Obj(vec![
                            ("retval".to_string(), Value::Int(c.retval)),
                            ("errno".to_string(), c.errno.map_or(Value::Null, Value::Int)),
                        ])
                    })
                    .collect();
                let profile = Value::Obj(vec![
                    ("name".to_string(), Value::Str(f.name.clone())),
                    ("error_cases".to_string(), Value::Arr(cases)),
                    (
                        "returns_dynamic".to_string(),
                        Value::Bool(f.returns_dynamic),
                    ),
                ]);
                (name.clone(), profile)
            })
            .collect();
        Value::Obj(vec![
            ("library".to_string(), Value::Str(self.library.clone())),
            ("functions".to_string(), Value::Obj(functions)),
        ])
        .to_pretty()
    }

    /// Parse a profile from its JSON form.
    pub fn from_json(text: &str) -> Result<FaultProfile, JsonError> {
        fn invalid(message: impl Into<String>) -> JsonError {
            JsonError {
                position: 0,
                message: message.into(),
            }
        }
        let doc = lfi_json::parse(text)?;
        let library = doc
            .get("library")
            .and_then(Value::as_str)
            .ok_or_else(|| invalid("missing string field `library`"))?
            .to_string();
        let Some(Value::Obj(members)) = doc.get("functions") else {
            return Err(invalid("missing object field `functions`"));
        };
        let mut functions = BTreeMap::new();
        for (name, entry) in members {
            let fn_name = entry
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| invalid(format!("function `{name}`: missing `name`")))?
                .to_string();
            let cases = entry
                .get("error_cases")
                .and_then(Value::as_arr)
                .ok_or_else(|| invalid(format!("function `{name}`: missing `error_cases`")))?;
            let mut error_cases = Vec::new();
            for case in cases {
                let retval = case
                    .get("retval")
                    .and_then(Value::as_int)
                    .ok_or_else(|| invalid(format!("function `{name}`: case missing `retval`")))?;
                let errno = match case.get("errno") {
                    Some(Value::Null) | None => None,
                    Some(value) => Some(value.as_int().ok_or_else(|| {
                        invalid(format!("function `{name}`: non-integer `errno`"))
                    })?),
                };
                error_cases.push(ErrorCase { retval, errno });
            }
            let returns_dynamic = entry
                .get("returns_dynamic")
                .and_then(Value::as_bool)
                .unwrap_or(false);
            functions.insert(
                name.clone(),
                FunctionProfile {
                    name: fn_name,
                    error_cases,
                    returns_dynamic,
                },
            );
        }
        Ok(FaultProfile { library, functions })
    }

    /// Merge another library's profile into this one (useful when an
    /// application links several libraries).
    pub fn merge(&mut self, other: &FaultProfile) {
        for (name, profile) in &other.functions {
            self.functions
                .entry(name.clone())
                .or_insert_with(|| profile.clone());
        }
    }
}

impl<'a> IntoIterator for &'a FaultProfile {
    type Item = &'a FunctionProfile;
    type IntoIter = std::collections::btree_map::Values<'a, String, FunctionProfile>;

    fn into_iter(self) -> Self::IntoIter {
        self.functions.values()
    }
}

/// Profile every exported function of a library module.
pub fn profile_library(module: &Module) -> FaultProfile {
    let insns = module.decode_code();
    let mut functions = BTreeMap::new();
    for export in &module.exports {
        if export.kind != SymKind::Func {
            continue;
        }
        let start = export.offset;
        let end = if export.size > 0 {
            export.offset + export.size
        } else {
            u64::MAX
        };
        let body: Vec<Insn> = insns
            .iter()
            .filter(|(off, _)| *off >= start && *off < end)
            .map(|(_, insn)| *insn)
            .collect();
        let profile = profile_function(&export.name, &body, module);
        functions.insert(export.name.clone(), profile);
    }
    FaultProfile {
        library: module.name.clone(),
        functions,
    }
}

/// Whether a constant return value is plausibly an error indicator: negative
/// values always are; zero only when the same path set `errno` (NULL-return
/// style APIs such as `malloc`, `fopen`, `opendir`).
pub fn is_error_value(retval: Word, errno: Option<Word>) -> bool {
    retval < 0 || (retval == 0 && errno.is_some())
}

fn profile_function(name: &str, body: &[Insn], module: &Module) -> FunctionProfile {
    let mut profile = FunctionProfile {
        name: name.to_string(),
        ..FunctionProfile::default()
    };
    // Last constant loaded into each register, if still valid.
    let mut last_const: Vec<Option<Word>> = vec![None; Reg::COUNT];
    // Whether the last write to r0 was a constant.
    let mut r0_const: Option<Word> = None;
    let mut r0_dynamic = false;
    // errno constant set on the current path, not yet paired with a return.
    let mut pending_errno: Option<Word> = None;

    for insn in body {
        match insn {
            Insn::MovI { dst, imm } => {
                last_const[dst.index()] = Some(*imm);
                if *dst == Reg::RET {
                    r0_const = Some(*imm);
                    r0_dynamic = false;
                }
            }
            Insn::TlsStore { sym, src } => {
                let is_errno = module
                    .symrefs
                    .get(*sym as usize)
                    .map(|s| s.name == CallConv::ERRNO_SYMBOL)
                    .unwrap_or(false);
                if is_errno {
                    pending_errno = last_const[src.index()];
                }
            }
            Insn::Ret => {
                if let Some(retval) = r0_const {
                    if is_error_value(retval, pending_errno) {
                        let case = ErrorCase {
                            retval,
                            errno: pending_errno,
                        };
                        if !profile.error_cases.contains(&case) {
                            profile.error_cases.push(case);
                        }
                    }
                } else if r0_dynamic {
                    profile.returns_dynamic = true;
                }
                pending_errno = None;
            }
            other => {
                if let Some(written) = other.written_reg() {
                    last_const[written.index()] = None;
                    if written == Reg::RET {
                        r0_const = None;
                        r0_dynamic = true;
                    }
                }
                // Calls and syscalls clobber the return register.
                if matches!(other, Insn::Sys { .. }) || other.is_call() {
                    last_const[Reg::RET.index()] = None;
                    r0_const = None;
                    r0_dynamic = true;
                }
            }
        }
    }
    profile.error_cases.sort();
    profile
}

#[cfg(test)]
mod tests {
    use lfi_arch::errno;
    use lfi_asm::assemble_text;

    use super::*;

    #[test]
    fn profiles_a_hand_written_wrapper() {
        let lib = assemble_text(
            r#"
            .module demo lib
            .func my_read
                sys read
                cmpi r0, 0
                jge ok
                cmpi r0, -4
                jne not_intr
                movi r7, EINTR
                tlsst errno, r7
                movi r0, -1
                ret
            not_intr:
                movi r7, EIO
                tlsst errno, r7
                movi r0, -1
                ret
            ok:
                ret
            "#,
        )
        .unwrap();
        let profile = profile_library(&lib);
        let read = profile.function("my_read").unwrap();
        assert_eq!(read.error_return_values(), vec![-1]);
        assert_eq!(read.errno_values(), vec![errno::EINTR, errno::EIO]);
    }

    #[test]
    fn success_only_functions_have_no_error_cases() {
        let lib = assemble_text(
            r#"
            .module demo lib
            .func seven
                movi r0, 7
                ret
            .func zero_ok
                movi r0, 0
                ret
            "#,
        )
        .unwrap();
        let profile = profile_library(&lib);
        assert!(profile.function("seven").unwrap().error_cases.is_empty());
        // `return 0` without errno is treated as success, not an error case.
        assert!(profile.function("zero_ok").unwrap().error_cases.is_empty());
        assert!(profile.failing_functions().is_empty());
    }

    #[test]
    fn null_return_with_errno_counts_as_error() {
        let lib = assemble_text(
            r#"
            .module demo lib
            .func my_fopen
                sys open
                cmpi r0, 0
                jge ok
                movi r7, ENOENT
                tlsst errno, r7
                movi r0, 0
                ret
            ok:
                ret
            "#,
        )
        .unwrap();
        let profile = profile_library(&lib);
        let fopen = profile.function("my_fopen").unwrap();
        assert_eq!(
            fopen.error_cases,
            vec![ErrorCase {
                retval: 0,
                errno: Some(errno::ENOENT)
            }]
        );
        assert_eq!(
            fopen.representative_case(),
            Some(ErrorCase {
                retval: 0,
                errno: Some(errno::ENOENT)
            })
        );
    }

    #[test]
    fn iteration_exposes_failing_functions() {
        let lib = assemble_text(
            r#"
            .module demo lib
            .func ok
                movi r0, 7
                ret
            .func fails
                movi r7, EIO
                tlsst errno, r7
                movi r0, -1
                ret
            "#,
        )
        .unwrap();
        let profile = profile_library(&lib);
        assert_eq!(profile.iter().count(), 2);
        assert_eq!((&profile).into_iter().count(), 2);
        let failing: Vec<&str> = profile.failing().map(|f| f.name.as_str()).collect();
        assert_eq!(failing, vec!["fails"]);
    }

    #[test]
    fn json_roundtrip() {
        let lib = assemble_text(
            r#"
            .module demo lib
            .func f
                movi r7, EBADF
                tlsst errno, r7
                movi r0, -1
                ret
            "#,
        )
        .unwrap();
        let profile = profile_library(&lib);
        let json = profile.to_json();
        assert!(json.contains("EBADF") || json.contains("\"errno\": 9"));
        let back = FaultProfile::from_json(&json).unwrap();
        assert_eq!(back, profile);
    }

    #[test]
    fn merge_prefers_existing_entries() {
        let mut a = FaultProfile {
            library: "a".into(),
            ..FaultProfile::default()
        };
        a.functions.insert(
            "f".into(),
            FunctionProfile {
                name: "f".into(),
                error_cases: vec![ErrorCase {
                    retval: -1,
                    errno: None,
                }],
                returns_dynamic: false,
            },
        );
        let mut b = FaultProfile {
            library: "b".into(),
            ..FaultProfile::default()
        };
        b.functions.insert(
            "f".into(),
            FunctionProfile {
                name: "f".into(),
                error_cases: vec![],
                returns_dynamic: true,
            },
        );
        b.functions.insert(
            "g".into(),
            FunctionProfile {
                name: "g".into(),
                error_cases: vec![],
                returns_dynamic: true,
            },
        );
        a.merge(&b);
        assert_eq!(a.functions.len(), 2);
        assert_eq!(a.function("f").unwrap().error_cases.len(), 1);
    }
}
