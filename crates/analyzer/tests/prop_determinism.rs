//! Property test: analysis verdicts are deterministic across module load
//! order. The call graph and the propagation pass both consume a *set* of
//! modules; feeding them any permutation of that set must produce identical
//! edges, identical verdicts, and identical findings documents — otherwise
//! baselines diffed in CI would flap with link order.

use lfi_analyzer::{
    analyze_call_sites, propagation_reports, AnalysisConfig, CallGraph, TargetFindings,
};
use lfi_cc::Compiler;
use lfi_obj::{Module, ModuleKind};
use proptest::prelude::*;

fn compile(name: &str, src: &str) -> Module {
    Compiler::new(name, ModuleKind::SharedLib)
        .add_source("t.c", src)
        .compile()
        .unwrap()
}

/// A program whose wrapper is consumed from two other modules, so the call
/// graph genuinely mixes intra- and cross-module edges.
fn modules() -> Vec<Module> {
    vec![
        compile(
            "prog",
            r#"
            int xmalloc(int n) {
                return malloc(n);
            }
            int local_caller() {
                int p = xmalloc(8);
                if (p == 0) { return -1; }
                return 0;
            }
            "#,
        ),
        compile(
            "app",
            r#"
            int app_caller() {
                int p = xmalloc(16);
                if (p == 0) { return -1; }
                return 1;
            }
            "#,
        ),
        compile(
            "extra",
            r#"
            int extra_caller() {
                int p = xmalloc(24);
                if (p == 0) { return -2; }
                return 2;
            }
            int unrelated() {
                int fd = open("/x", O_RDONLY, 0);
                return fd;
            }
            "#,
        ),
    ]
}

/// Deterministic Fisher–Yates driven by a test-supplied seed.
fn permute<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn verdicts_are_independent_of_module_order(seed in any::<u64>()) {
        let owned = modules();
        let canonical: Vec<&Module> = owned.iter().collect();
        let mut shuffled = canonical.clone();
        permute(&mut shuffled, seed);

        let graph_a = CallGraph::build(&canonical);
        let graph_b = CallGraph::build(&shuffled);
        prop_assert_eq!(graph_a.callers_of("xmalloc"), graph_b.callers_of("xmalloc"));
        prop_assert_eq!(graph_a.edge_count(), graph_b.edge_count());

        let config = AnalysisConfig::default();
        let prog = owned.iter().find(|m| m.name == "prog").unwrap();
        let report = analyze_call_sites(prog, "malloc", &[0], config);

        let from_canonical =
            propagation_reports(&canonical, std::slice::from_ref(&report), config);
        let from_shuffled = propagation_reports(&shuffled, std::slice::from_ref(&report), config);
        prop_assert_eq!(&from_canonical, &from_shuffled);

        let doc_a = TargetFindings::collect("prog", std::slice::from_ref(&report), &from_canonical);
        let doc_b = TargetFindings::collect("prog", &[report], &from_shuffled);
        prop_assert_eq!(doc_a.to_json(), doc_b.to_json());
    }
}
