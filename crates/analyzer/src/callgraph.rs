//! Whole-program call graph over loaded modules.
//!
//! The graph records, for every function *name*, the call sites that target
//! it — whether through a `callsym` (symbolic, possibly cross-module, the
//! only kind [`Module::call_sites_of`] sees) or a direct `call` to a local
//! code offset (what the compiler emits for intra-module calls, invisible to
//! symbol-based discovery). The interprocedural propagation pass walks this
//! graph *upward*: from a wrapper function to the callers that consume its
//! return value.
//!
//! Construction is deterministic regardless of the order modules are
//! supplied in: modules are sorted by name before scanning and every edge
//! list is sorted by (module, offset).

use std::collections::BTreeMap;

use lfi_arch::Insn;
use lfi_obj::{Module, SymKind};
use serde::{Deserialize, Serialize};

/// One call site targeting a function, seen from the caller's side.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CallSiteRef {
    /// Name of the module containing the call instruction.
    pub module: String,
    /// Function containing the call instruction, if attributable.
    pub caller: Option<String>,
    /// Code offset of the call instruction within `module`.
    pub offset: u64,
}

/// Callers-of index over a set of modules.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Callee function name → call sites targeting it, sorted.
    callers: BTreeMap<String, Vec<CallSiteRef>>,
}

impl CallGraph {
    /// Build the graph over a set of modules. Both symbolic (`callsym`) and
    /// direct local (`call`) edges are collected; indirect calls (`callr`)
    /// have no static target and contribute no edges.
    pub fn build(modules: &[&Module]) -> CallGraph {
        let mut sorted: Vec<&Module> = modules.to_vec();
        sorted.sort_by(|a, b| a.name.cmp(&b.name));
        let mut graph = CallGraph::default();
        for module in sorted {
            for (offset, insn) in module.decode_code() {
                let callee = match insn {
                    Insn::CallSym { sym } => module
                        .symrefs
                        .get(sym as usize)
                        .filter(|s| s.kind == SymKind::Func)
                        .map(|s| s.name.clone()),
                    Insn::Call { target } => module
                        .containing_function(target as u64)
                        .filter(|e| e.offset == target as u64)
                        .map(|e| e.name.clone()),
                    _ => None,
                };
                let Some(callee) = callee else { continue };
                graph.callers.entry(callee).or_default().push(CallSiteRef {
                    module: module.name.clone(),
                    caller: module.containing_function(offset).map(|e| e.name.clone()),
                    offset,
                });
            }
        }
        for sites in graph.callers.values_mut() {
            sites.sort();
        }
        graph
    }

    /// Call sites targeting `function`, sorted by (module, caller, offset).
    pub fn callers_of(&self, function: &str) -> &[CallSiteRef] {
        self.callers
            .get(function)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Function names that have at least one known call site.
    pub fn called_functions(&self) -> impl Iterator<Item = &str> {
        self.callers.keys().map(|s| s.as_str())
    }

    /// Total number of edges in the graph.
    pub fn edge_count(&self) -> usize {
        self.callers.values().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use lfi_cc::Compiler;
    use lfi_obj::ModuleKind;

    use super::*;

    fn compile(name: &str, src: &str) -> Module {
        Compiler::new(name, ModuleKind::SharedLib)
            .add_source("t.c", src)
            .compile()
            .unwrap()
    }

    #[test]
    fn direct_local_calls_are_edges() {
        let m = compile(
            "prog",
            r#"
            int helper(int n) { return n + 1; }
            int a() { return helper(1); }
            int b() { return helper(2); }
            "#,
        );
        let graph = CallGraph::build(&[&m]);
        let callers = graph.callers_of("helper");
        assert_eq!(callers.len(), 2);
        let names: Vec<_> = callers.iter().map(|c| c.caller.as_deref()).collect();
        assert_eq!(names, vec![Some("a"), Some("b")]);
        assert!(callers.iter().all(|c| c.module == "prog"));
    }

    #[test]
    fn symbolic_calls_are_edges() {
        let m = compile(
            "prog",
            r#"
            int f() { return malloc(8); }
            "#,
        );
        let graph = CallGraph::build(&[&m]);
        assert_eq!(graph.callers_of("malloc").len(), 1);
        assert_eq!(graph.callers_of("malloc")[0].caller.as_deref(), Some("f"));
    }

    #[test]
    fn construction_is_order_independent() {
        let a = compile("alpha", "int f() { return shared(1); }");
        let b = compile("beta", "int g() { return shared(2); }");
        let forward = CallGraph::build(&[&a, &b]);
        let backward = CallGraph::build(&[&b, &a]);
        assert_eq!(forward.callers_of("shared"), backward.callers_of("shared"));
        assert_eq!(forward.edge_count(), backward.edge_count());
    }

    #[test]
    fn unknown_functions_have_no_callers() {
        let m = compile("prog", "int f() { return 0; }");
        let graph = CallGraph::build(&[&m]);
        assert!(graph.callers_of("nonexistent").is_empty());
    }
}
