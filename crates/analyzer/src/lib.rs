//! Whole-program static analysis (Algorithm 1 of the paper, and beyond).
//!
//! The analyzer combs a target program's binary for call sites of a library
//! function, builds the **full-function** control-flow graph after each call
//! (with explicit truncation accounting when a windowed walk is requested),
//! runs a dataflow analysis that follows copies of the call's return value,
//! and classifies each site as fully checked, partially checked, or
//! completely unchecked with respect to the error codes in the library's
//! fault profile. Unchecked and partially checked sites become automatically
//! generated injection scenarios (handled in `lfi-core`).
//!
//! On top of the per-site pass sit three whole-program analyses:
//!
//! - a [call graph](callgraph) over all loaded modules, covering both
//!   symbolic (`callsym`) and direct local (`call`) edges;
//! - [interprocedural error propagation](propagation), which resolves the
//!   wrapper pattern (`xmalloc` et al.) by walking the call graph upward and
//!   assigns every site a [`PropagationVerdict`];
//! - a [callee-side path-sensitive fault profile](callee) of library
//!   modules, cross-checked against the runtime profiler's linear scan —
//!   disagreements become typed [`ProfileDivergence`] findings.
//!
//! The [findings] module serializes everything into the JSON documents the
//! `lfi_analyze` tool emits and CI diffs against committed baselines.
//!
//! The crate also identifies *recovery blocks* — code reachable only through
//! the error edge of a return-value check — which is what the recovery-code
//! coverage measurements of Table 3 are computed over.

pub mod callee;
pub mod callgraph;
pub mod callsite;
pub mod cfg;
pub mod dataflow;
pub mod findings;
pub mod propagation;
pub mod recovery;

pub use callee::{
    cross_check, static_profile_library, ProfileDivergence, StaticFaultProfile,
    StaticFunctionProfile,
};
pub use callgraph::{CallGraph, CallSiteRef};
pub use callsite::{
    analyze_call_sites, analyze_program, classify, confusion_matrix, iter_sites, unchecked_sites,
    AnalysisConfig, CallSiteClass, CallSiteReport, ClassMetrics, ConfusionMatrix, SiteFinding,
};
pub use cfg::{build_function_cfg, build_partial_cfg, PartialCfg};
pub use dataflow::{analyze_checks, CheckSummary, TrackedLoc};
pub use findings::{
    diff_findings, verdict_str, Regression, RegressionKind, SiteRecord, TargetFindings,
};
pub use propagation::{
    propagation_reports, PropagationFinding, PropagationReport, PropagationVerdict,
};
pub use recovery::{recovery_lines, recovery_offsets, RecoveryMap};
