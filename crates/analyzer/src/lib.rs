//! Call-site analysis (Algorithm 1 of the paper).
//!
//! The analyzer combs a target program's binary for call sites of a library
//! function, builds a partial control-flow graph of the instructions that
//! follow each call, runs a dataflow analysis that follows copies of the
//! call's return value, and classifies each site as fully checked, partially
//! checked, or completely unchecked with respect to the error codes in the
//! library's fault profile. Unchecked and partially checked sites become
//! automatically generated injection scenarios (handled in `lfi-core`).
//!
//! The crate also identifies *recovery blocks* — code reachable only through
//! the error edge of a return-value check — which is what the recovery-code
//! coverage measurements of Table 3 are computed over.

pub mod callsite;
pub mod cfg;
pub mod dataflow;
pub mod recovery;

pub use callsite::{
    analyze_call_sites, analyze_program, confusion_matrix, iter_sites, unchecked_sites,
    AnalysisConfig, CallSiteClass, CallSiteReport, ConfusionMatrix, SiteFinding,
};
pub use cfg::{build_partial_cfg, PartialCfg};
pub use dataflow::{analyze_checks, CheckSummary, TrackedLoc};
pub use recovery::{recovery_lines, recovery_offsets, RecoveryMap};
