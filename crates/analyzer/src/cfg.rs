//! Control-flow graph construction.
//!
//! The paper builds a partial CFG of (empirically) 100 instructions following
//! each call site; indirect branches are ignored (§5). We support that
//! windowed mode for fidelity experiments, but the default analysis builds
//! the **full-function** CFG: the walk simply runs until every path reaches a
//! `ret` (or the defensive [`FUNCTION_CAP`]), so a check sitting past an
//! arbitrary instruction window is never silently missed. Either way a walk
//! that stops early records the fact in [`PartialCfg::truncated`] instead of
//! returning a graph indistinguishable from a complete one.

use std::collections::{BTreeMap, HashMap, VecDeque};

use lfi_arch::{Insn, INSN_SIZE};
use lfi_obj::Module;

/// Post-call instruction window used by the paper's original analysis.
pub const DEFAULT_WINDOW: usize = 100;

/// Defensive ceiling on full-function CFG walks. Real functions terminate at
/// `ret` long before this; hitting the cap marks the graph truncated.
pub const FUNCTION_CAP: usize = 65_536;

/// A control-flow graph rooted at one code offset.
#[derive(Debug, Clone, Default)]
pub struct PartialCfg {
    /// Instructions included in the graph, keyed by code offset.
    pub nodes: BTreeMap<u64, Insn>,
    /// Successor edges. The first successor of a conditional branch is the
    /// fall-through edge, the second is the taken edge.
    pub succs: HashMap<u64, Vec<u64>>,
    /// The root offset (the instruction after the call).
    pub entry: u64,
    /// The walk hit its instruction budget while decodable, not-yet-visited
    /// offsets remained: the graph is a prefix of the real one, and any
    /// conclusion drawn from it is low-confidence. A complete walk (every
    /// path ended at `ret`/`halt` or ran off the module) leaves this false.
    pub truncated: bool,
}

impl PartialCfg {
    /// Number of instructions included in the graph.
    pub fn insn_count(&self) -> usize {
        self.nodes.len()
    }

    /// Successor offsets of a node.
    pub fn successors(&self, offset: u64) -> &[u64] {
        self.succs.get(&offset).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Offsets reachable from `start` (inclusive), following graph edges.
    pub fn reachable_from(&self, start: u64) -> std::collections::BTreeSet<u64> {
        let mut seen = std::collections::BTreeSet::new();
        let mut queue = VecDeque::new();
        if self.nodes.contains_key(&start) {
            queue.push_back(start);
        }
        while let Some(off) = queue.pop_front() {
            if !seen.insert(off) {
                continue;
            }
            for &succ in self.successors(off) {
                if !seen.contains(&succ) {
                    queue.push_back(succ);
                }
            }
        }
        seen
    }
}

/// Build the CFG of up to `max_insns` instructions starting at `entry`
/// (normally the instruction right after a call site). A walk stopped by the
/// budget sets [`PartialCfg::truncated`].
pub fn build_partial_cfg(module: &Module, entry: u64, max_insns: usize) -> PartialCfg {
    let mut cfg = PartialCfg {
        entry,
        ..PartialCfg::default()
    };
    let mut queue = VecDeque::new();
    queue.push_back(entry);
    while let Some(offset) = queue.pop_front() {
        if cfg.nodes.contains_key(&offset) {
            continue;
        }
        let Some(insn) = module.insn_at(offset) else {
            continue;
        };
        if cfg.nodes.len() >= max_insns {
            // A decodable, unvisited offset remains: the budget cut the
            // walk short and the graph is a prefix of the real one.
            cfg.truncated = true;
            continue;
        }
        cfg.nodes.insert(offset, insn);
        let mut succs = Vec::new();
        match insn {
            Insn::Ret | Insn::Halt | Insn::Brk => {}
            Insn::Jmp { target } => succs.push(target as u64),
            Insn::J { target, .. } => {
                succs.push(offset + INSN_SIZE); // fall-through first
                succs.push(target as u64); // taken edge second
            }
            // Calls (direct, through symbols, or indirect) fall through: the
            // analysis is intra-procedural, exactly like the paper's.
            _ => succs.push(offset + INSN_SIZE),
        }
        for &succ in &succs {
            if !cfg.nodes.contains_key(&succ) {
                queue.push_back(succ);
            }
        }
        cfg.succs.insert(offset, succs);
    }
    cfg
}

/// Build the full-function CFG from `entry`: the walk runs until every path
/// terminates, bounded only by the defensive [`FUNCTION_CAP`]. This is the
/// default site CFG — it sees every check between the call and the function's
/// returns, where the windowed walk could stop one instruction short of one.
pub fn build_function_cfg(module: &Module, entry: u64) -> PartialCfg {
    build_partial_cfg(module, entry, FUNCTION_CAP)
}

#[cfg(test)]
mod tests {
    use lfi_asm::assemble_text;

    use super::*;

    fn demo_module() -> Module {
        assemble_text(
            r#"
            .module demo lib
            .func f
                callsym read        ; offset 0
                cmpi r0, -1         ; 12
                je err              ; 24
                movi r0, 0          ; 36
                ret                 ; 48
            err:
                movi r0, 1          ; 60
                ret                 ; 72
            "#,
        )
        .unwrap()
    }

    #[test]
    fn follows_both_edges_of_conditional_branches() {
        let m = demo_module();
        let cfg = build_partial_cfg(&m, 12, DEFAULT_WINDOW);
        assert!(cfg.nodes.contains_key(&12));
        assert!(cfg.nodes.contains_key(&36), "fall-through edge explored");
        assert!(cfg.nodes.contains_key(&60), "taken edge explored");
        assert_eq!(cfg.successors(24), &[36, 60]);
        assert!(cfg.successors(48).is_empty(), "ret terminates a path");
        assert!(!cfg.truncated, "complete walks are not truncated");
    }

    #[test]
    fn window_limits_the_number_of_nodes_and_flags_truncation() {
        let m = demo_module();
        let cfg = build_partial_cfg(&m, 12, 2);
        assert_eq!(cfg.nodes.len(), 2);
        assert_eq!(cfg.insn_count(), 2);
        assert!(cfg.truncated, "budget-stopped walk must say so");
    }

    #[test]
    fn full_function_walks_are_complete() {
        let m = demo_module();
        let cfg = build_function_cfg(&m, 12);
        assert_eq!(cfg.insn_count(), 6, "every post-call instruction of f");
        assert!(!cfg.truncated);
    }

    #[test]
    fn reachability_queries_work() {
        let m = demo_module();
        let cfg = build_partial_cfg(&m, 12, DEFAULT_WINDOW);
        let from_err = cfg.reachable_from(60);
        assert!(from_err.contains(&72));
        assert!(!from_err.contains(&36));
    }

    #[test]
    fn entry_past_the_end_produces_an_empty_graph() {
        let m = demo_module();
        let cfg = build_partial_cfg(&m, 10_000, DEFAULT_WINDOW);
        assert!(cfg.nodes.is_empty());
        assert!(!cfg.truncated, "nothing to walk is not a truncation");
    }
}
