//! Dataflow analysis of return-value checks.
//!
//! Starting from "the return register holds the call's return value", the
//! analysis follows copies of that value through registers and frame slots
//! (spills at fixed `fp`-relative offsets), and records every comparison of a
//! copy against an integer literal together with the branch condition that
//! consumes it. Equality-style conditions populate `Chk_eq`, inequality-style
//! conditions populate `Chk_ineq`, as in Algorithm 1.
//!
//! The analysis additionally reports whether a tracked copy can *escape to
//! the caller*: a `ret` reachable while the return register still holds a
//! copy means the containing function hands the (possibly unchecked) value to
//! its own callers — the `xmalloc`-wrapper shape the interprocedural
//! propagation pass (see [`crate::propagation`]) follows through the call
//! graph.

use std::collections::{BTreeSet, HashMap, VecDeque};

use lfi_arch::{Insn, Reg, Word};

use crate::cfg::PartialCfg;

/// A location that may hold a copy of the tracked return value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrackedLoc {
    /// A register.
    Reg(Reg),
    /// A stack slot at a fixed frame-pointer displacement.
    Slot(Word),
}

/// The checks discovered downstream of one call site.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckSummary {
    /// Literals the return value was compared against with `==` / `!=`.
    pub chk_eq: BTreeSet<Word>,
    /// Literals the return value was compared against with `<`, `<=`, `>`, `>=`.
    pub chk_ineq: BTreeSet<Word>,
    /// A `ret` is reachable with a tracked copy in the return register: the
    /// containing function may return the call's value to its own callers.
    pub returns_tracked: bool,
}

impl CheckSummary {
    /// Whether no check of any kind was found.
    pub fn is_empty(&self) -> bool {
        self.chk_eq.is_empty() && self.chk_ineq.is_empty()
    }
}

type LocSet = BTreeSet<TrackedLoc>;

/// Transfer function: how one instruction transforms the set of locations
/// holding copies of the tracked value.
fn transfer(insn: &Insn, set: &LocSet) -> LocSet {
    let mut out = set.clone();
    match insn {
        Insn::MovR { dst, src } => {
            if set.contains(&TrackedLoc::Reg(*src)) {
                out.insert(TrackedLoc::Reg(*dst));
            } else {
                out.remove(&TrackedLoc::Reg(*dst));
            }
        }
        Insn::Store { base, off, src } if *base == Reg::Fp => {
            if set.contains(&TrackedLoc::Reg(*src)) {
                out.insert(TrackedLoc::Slot(*off));
            } else {
                out.remove(&TrackedLoc::Slot(*off));
            }
        }
        Insn::Load { dst, base, off } if *base == Reg::Fp => {
            if set.contains(&TrackedLoc::Slot(*off)) {
                out.insert(TrackedLoc::Reg(*dst));
            } else {
                out.remove(&TrackedLoc::Reg(*dst));
            }
        }
        // A further call or syscall produces a new value in the return
        // register and may clobber the caller-saved registers.
        Insn::CallSym { .. } | Insn::Call { .. } | Insn::CallR { .. } | Insn::Sys { .. } => {
            for r in 0..10u8 {
                out.remove(&TrackedLoc::Reg(Reg::R(r)));
            }
        }
        other => {
            if let Some(written) = other.written_reg() {
                out.remove(&TrackedLoc::Reg(written));
            }
        }
    }
    out
}

/// Run the check analysis over a CFG: a forward may-analysis to a fixpoint
/// (IN sets grow monotonically under union join, so termination is
/// structural, not guarded), then one recording pass over the stabilized IN
/// sets for comparisons and return-escapes.
pub fn analyze_checks(cfg: &PartialCfg) -> CheckSummary {
    let mut summary = CheckSummary::default();
    if cfg.nodes.is_empty() {
        return summary;
    }
    // IN sets per node; the entry starts with the return register tracked.
    let mut in_sets: HashMap<u64, LocSet> = HashMap::new();
    let mut entry_set = LocSet::new();
    entry_set.insert(TrackedLoc::Reg(Reg::RET));
    in_sets.insert(cfg.entry, entry_set);

    let mut worklist: VecDeque<u64> = VecDeque::new();
    worklist.push_back(cfg.entry);
    while let Some(offset) = worklist.pop_front() {
        let Some(insn) = cfg.nodes.get(&offset) else {
            continue;
        };
        let in_set = in_sets.get(&offset).cloned().unwrap_or_default();
        let out_set = transfer(insn, &in_set);
        for &succ in cfg.successors(offset) {
            if !cfg.nodes.contains_key(&succ) {
                continue;
            }
            let entry = in_sets.entry(succ).or_default();
            let before = entry.len();
            entry.extend(out_set.iter().copied());
            if entry.len() != before {
                worklist.push_back(succ);
            }
        }
    }

    // Recording pass over the stabilized IN sets.
    for (&offset, insn) in &cfg.nodes {
        let Some(in_set) = in_sets.get(&offset) else {
            continue; // unreachable from the entry
        };
        match insn {
            // A comparison of a tracked copy against a literal, paired with
            // the conditional branch that consumes the flags (the next node).
            Insn::CmpI { a, imm } if in_set.contains(&TrackedLoc::Reg(*a)) => {
                for &succ in cfg.successors(offset) {
                    if let Some(Insn::J { cond, .. }) = cfg.nodes.get(&succ) {
                        if cond.is_equality() {
                            summary.chk_eq.insert(*imm);
                        } else {
                            summary.chk_ineq.insert(*imm);
                        }
                    }
                }
            }
            // A return with a tracked copy still in the return register:
            // the value escapes to the containing function's callers.
            Insn::Ret if in_set.contains(&TrackedLoc::Reg(Reg::RET)) => {
                summary.returns_tracked = true;
            }
            _ => {}
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use lfi_asm::assemble_text;
    use lfi_obj::Module;

    use crate::cfg::{build_function_cfg, build_partial_cfg, DEFAULT_WINDOW};

    use super::*;

    fn cfg_after_first_call(module: &Module, func: &str) -> PartialCfg {
        let site = module.call_sites_of(func)[0];
        build_partial_cfg(module, site + lfi_arch::INSN_SIZE, DEFAULT_WINDOW)
    }

    #[test]
    fn direct_check_of_return_register_is_found() {
        let m = assemble_text(
            r#"
            .module demo lib
            .func f
                callsym read
                cmpi r0, -1
                je err
                ret
            err:
                movi r0, 1
                ret
            "#,
        )
        .unwrap();
        let summary = analyze_checks(&cfg_after_first_call(&m, "read"));
        assert!(summary.chk_eq.contains(&-1));
        assert!(summary.chk_ineq.is_empty());
        assert!(
            summary.returns_tracked,
            "the fall-through ret returns r0, still the call's value"
        );
    }

    #[test]
    fn check_through_a_spilled_copy_is_found() {
        // The return value is spilled to a frame slot, reloaded into another
        // register, and only then compared — the copy chain must be followed.
        let m = assemble_text(
            r#"
            .module demo lib
            .func f
                callsym malloc
                st [fp-16], r0
                movi r0, 7
                ld r3, [fp-16]
                cmpi r3, 0
                je err
                ret
            err:
                movi r0, 1
                ret
            "#,
        )
        .unwrap();
        let summary = analyze_checks(&cfg_after_first_call(&m, "malloc"));
        assert!(summary.chk_eq.contains(&0));
        assert!(
            !summary.returns_tracked,
            "r0 was overwritten before every ret"
        );
    }

    #[test]
    fn inequality_checks_are_classified_separately() {
        let m = assemble_text(
            r#"
            .module demo lib
            .func f
                callsym read
                cmpi r0, 0
                jlt err
                ret
            err:
                movi r0, 1
                ret
            "#,
        )
        .unwrap();
        let summary = analyze_checks(&cfg_after_first_call(&m, "read"));
        assert!(summary.chk_eq.is_empty());
        assert!(summary.chk_ineq.contains(&0));
    }

    #[test]
    fn unrelated_comparisons_are_not_misattributed() {
        // r0 is overwritten with an unrelated value before the comparison, so
        // the comparison must NOT count as a check of the call's return value.
        let m = assemble_text(
            r#"
            .module demo lib
            .func f
                callsym read
                movi r0, 3
                cmpi r0, -1
                je err
                ret
            err:
                movi r0, 1
                ret
            "#,
        )
        .unwrap();
        let summary = analyze_checks(&cfg_after_first_call(&m, "read"));
        assert!(summary.is_empty());
        assert!(!summary.returns_tracked);
    }

    #[test]
    fn a_second_call_stops_tracking_the_old_return_value() {
        let m = assemble_text(
            r#"
            .module demo lib
            .func f
                callsym read
                callsym write
                cmpi r0, -1
                je err
                ret
            err:
                movi r0, 1
                ret
            "#,
        )
        .unwrap();
        // The check applies to write's return value, not read's.
        let summary = analyze_checks(&cfg_after_first_call(&m, "read"));
        assert!(summary.is_empty());
    }

    #[test]
    fn checks_on_both_branch_arms_are_collected() {
        let m = assemble_text(
            r#"
            .module demo lib
            .func f
                callsym read
                st [fp-8], r0
                ld r2, [fp-8]
                cmpi r2, -1
                je err
                ld r3, [fp-8]
                cmpi r3, 0
                je empty
                ret
            empty:
                movi r0, 2
                ret
            err:
                movi r0, 1
                ret
            "#,
        )
        .unwrap();
        let summary = analyze_checks(&cfg_after_first_call(&m, "read"));
        assert_eq!(
            summary.chk_eq.iter().copied().collect::<Vec<_>>(),
            vec![-1, 0]
        );
    }

    #[test]
    fn tail_returned_values_escape() {
        // The wrapper returns the callee's value untouched — the classic
        // `return malloc(n);` shape the propagation pass depends on.
        let m = assemble_text(
            r#"
            .module demo lib
            .func xmalloc
                callsym malloc
                ret
            "#,
        )
        .unwrap();
        let site = m.call_sites_of("malloc")[0];
        let summary = analyze_checks(&build_function_cfg(&m, site + lfi_arch::INSN_SIZE));
        assert!(summary.is_empty());
        assert!(summary.returns_tracked);
    }
}
