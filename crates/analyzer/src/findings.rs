//! Machine-readable analysis findings and baseline diffing.
//!
//! `lfi_analyze` (in `lfi_bench`) serializes one [`TargetFindings`] document
//! per target program. CI commits these under `analysis/baselines/` and
//! diffs freshly computed findings against them on every build: a site whose
//! verdict *worsens* (handled → unhandled) or a brand-new unhandled site
//! fails the gate, while improvements and benign shifts pass.
//!
//! Sites are keyed by `(function, caller, ordinal)` — the ordinal is the
//! site's index among the sites sharing its `(function, caller)` pair — so
//! the diff is stable across unrelated code motion that only shifts offsets.

use lfi_arch::Word;
use lfi_json::{JsonError, Value};
use serde::{Deserialize, Serialize};

use crate::callsite::{CallSiteClass, CallSiteReport};
use crate::propagation::{PropagationReport, PropagationVerdict};

/// One call site in findings form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteRecord {
    /// Library function called.
    pub function: String,
    /// Function containing the call site.
    pub caller: Option<String>,
    /// Index among the sites sharing this `(function, caller)` pair, in
    /// code-offset order — the offset-independent part of the site key.
    pub ordinal: usize,
    /// Code offset (informational; not part of the diff key).
    pub offset: u64,
    /// Intraprocedural classification.
    pub class: CallSiteClass,
    /// Interprocedural verdict.
    pub verdict: PropagationVerdict,
    /// The classification came from a truncated CFG.
    pub low_confidence: bool,
    /// Instructions in the site's CFG.
    pub cfg_insns: usize,
    /// Caller chain that handles the value, for propagated-checked sites.
    pub chain: Vec<String>,
    /// Error codes found checked by equality.
    pub checked_eq: Vec<Word>,
    /// Literals found checked by inequality.
    pub checked_ineq: Vec<Word>,
}

impl SiteRecord {
    fn key(&self) -> (String, Option<String>, usize) {
        (self.function.clone(), self.caller.clone(), self.ordinal)
    }
}

/// The complete findings for one target program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetFindings {
    /// Target program name.
    pub target: String,
    /// Per-site records, ordered by (function, offset).
    pub sites: Vec<SiteRecord>,
}

impl TargetFindings {
    /// Join intraprocedural reports with their propagation refinements into
    /// one findings document. The two slices must be parallel (as produced
    /// by `analyze_program` + `propagation_reports`).
    pub fn collect(
        target: &str,
        reports: &[CallSiteReport],
        propagation: &[PropagationReport],
    ) -> TargetFindings {
        let mut sites = Vec::new();
        for report in reports {
            let verdicts = propagation
                .iter()
                .find(|p| p.function == report.function && p.program == report.program);
            for (index, site) in report.sites.iter().enumerate() {
                let finding = verdicts.and_then(|p| p.findings.get(index));
                let ordinal = report.sites[..index]
                    .iter()
                    .filter(|s| s.caller == site.caller)
                    .count();
                sites.push(SiteRecord {
                    function: report.function.clone(),
                    caller: site.caller.clone(),
                    ordinal,
                    offset: site.offset,
                    class: site.class,
                    verdict: finding.map(|f| f.verdict).unwrap_or_else(|| {
                        if site.class == CallSiteClass::Checked {
                            PropagationVerdict::HandledLocally
                        } else {
                            PropagationVerdict::Dropped
                        }
                    }),
                    low_confidence: site.low_confidence,
                    cfg_insns: site.cfg_insns,
                    chain: finding.map(|f| f.chain.clone()).unwrap_or_default(),
                    checked_eq: site.checked_eq.clone(),
                    checked_ineq: site.checked_ineq.clone(),
                });
            }
        }
        TargetFindings {
            target: target.to_string(),
            sites,
        }
    }

    /// Sites whose verdict leaves the error return unhandled.
    pub fn unhandled(&self) -> impl Iterator<Item = &SiteRecord> {
        self.sites.iter().filter(|s| !s.verdict.is_handled())
    }

    /// Serialize to pretty JSON (the baseline file format).
    pub fn to_json(&self) -> String {
        let sites = self
            .sites
            .iter()
            .map(|s| {
                Value::Obj(vec![
                    ("function".to_string(), Value::Str(s.function.clone())),
                    (
                        "caller".to_string(),
                        s.caller.clone().map_or(Value::Null, Value::Str),
                    ),
                    ("ordinal".to_string(), Value::Int(s.ordinal as i64)),
                    ("offset".to_string(), Value::Int(s.offset as i64)),
                    ("class".to_string(), Value::Str(class_str(s.class).into())),
                    (
                        "verdict".to_string(),
                        Value::Str(verdict_str(s.verdict).into()),
                    ),
                    ("low_confidence".to_string(), Value::Bool(s.low_confidence)),
                    ("cfg_insns".to_string(), Value::Int(s.cfg_insns as i64)),
                    (
                        "chain".to_string(),
                        Value::Arr(s.chain.iter().cloned().map(Value::Str).collect()),
                    ),
                    (
                        "checked_eq".to_string(),
                        Value::Arr(s.checked_eq.iter().map(|&v| Value::Int(v)).collect()),
                    ),
                    (
                        "checked_ineq".to_string(),
                        Value::Arr(s.checked_ineq.iter().map(|&v| Value::Int(v)).collect()),
                    ),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("target".to_string(), Value::Str(self.target.clone())),
            ("sites".to_string(), Value::Arr(sites)),
        ])
        .to_pretty()
    }

    /// Parse a findings document back from its JSON form.
    pub fn from_json(text: &str) -> Result<TargetFindings, JsonError> {
        fn invalid(message: impl Into<String>) -> JsonError {
            JsonError {
                position: 0,
                message: message.into(),
            }
        }
        let doc = lfi_json::parse(text)?;
        let target = doc
            .get("target")
            .and_then(Value::as_str)
            .ok_or_else(|| invalid("missing string field `target`"))?
            .to_string();
        let raw_sites = doc
            .get("sites")
            .and_then(Value::as_arr)
            .ok_or_else(|| invalid("missing array field `sites`"))?;
        let mut sites = Vec::new();
        for entry in raw_sites {
            let function = entry
                .get("function")
                .and_then(Value::as_str)
                .ok_or_else(|| invalid("site missing `function`"))?
                .to_string();
            let caller = match entry.get("caller") {
                Some(Value::Null) | None => None,
                Some(value) => Some(
                    value
                        .as_str()
                        .ok_or_else(|| invalid("non-string `caller`"))?
                        .to_string(),
                ),
            };
            let int_field = |name: &str| {
                entry
                    .get(name)
                    .and_then(Value::as_int)
                    .ok_or_else(|| invalid(format!("site missing `{name}`")))
            };
            let class = entry
                .get("class")
                .and_then(Value::as_str)
                .and_then(class_from_str)
                .ok_or_else(|| invalid("site missing or invalid `class`"))?;
            let verdict = entry
                .get("verdict")
                .and_then(Value::as_str)
                .and_then(verdict_from_str)
                .ok_or_else(|| invalid("site missing or invalid `verdict`"))?;
            let words = |name: &str| -> Result<Vec<Word>, JsonError> {
                entry
                    .get(name)
                    .and_then(Value::as_arr)
                    .ok_or_else(|| invalid(format!("site missing `{name}`")))?
                    .iter()
                    .map(|v| v.as_int().ok_or_else(|| invalid("non-integer word")))
                    .collect()
            };
            let chain = entry
                .get("chain")
                .and_then(Value::as_arr)
                .ok_or_else(|| invalid("site missing `chain`"))?
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| invalid("non-string chain entry"))
                })
                .collect::<Result<Vec<String>, JsonError>>()?;
            sites.push(SiteRecord {
                function,
                caller,
                ordinal: int_field("ordinal")? as usize,
                offset: int_field("offset")? as u64,
                class,
                verdict,
                low_confidence: entry
                    .get("low_confidence")
                    .and_then(Value::as_bool)
                    .unwrap_or(false),
                cfg_insns: int_field("cfg_insns")? as usize,
                chain,
                checked_eq: words("checked_eq")?,
                checked_ineq: words("checked_ineq")?,
            });
        }
        Ok(TargetFindings { target, sites })
    }
}

/// Why a findings diff fails the gate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegressionKind {
    /// A site not in the baseline whose error return is unhandled.
    NewUnhandledSite {
        /// The new site's verdict.
        verdict: PropagationVerdict,
    },
    /// A baseline-handled site is no longer handled.
    VerdictWorsened {
        /// Verdict recorded in the baseline.
        from: PropagationVerdict,
        /// Verdict now.
        to: PropagationVerdict,
    },
}

/// One gate-failing difference between baseline and current findings.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Regression {
    /// Library function of the affected site.
    pub function: String,
    /// Containing function of the affected site.
    pub caller: Option<String>,
    /// Site ordinal within its `(function, caller)` pair.
    pub ordinal: usize,
    /// What went wrong.
    pub kind: RegressionKind,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let caller = self.caller.as_deref().unwrap_or("?");
        match &self.kind {
            RegressionKind::NewUnhandledSite { verdict } => write!(
                f,
                "new unhandled site: {} call #{} in {caller} ({})",
                self.function,
                self.ordinal,
                verdict_str(*verdict)
            ),
            RegressionKind::VerdictWorsened { from, to } => write!(
                f,
                "{} call #{} in {caller}: {} -> {}",
                self.function,
                self.ordinal,
                verdict_str(*from),
                verdict_str(*to)
            ),
        }
    }
}

/// Diff current findings against a committed baseline. Only *regressions*
/// are returned: new unhandled sites and handled→unhandled transitions.
/// Improvements (new handled sites, unhandled sites fixed or removed) pass
/// silently — regenerate the baseline to absorb them.
pub fn diff_findings(baseline: &TargetFindings, current: &TargetFindings) -> Vec<Regression> {
    use std::collections::BTreeMap;
    let base: BTreeMap<_, &SiteRecord> = baseline.sites.iter().map(|s| (s.key(), s)).collect();
    let mut regressions = Vec::new();
    for site in &current.sites {
        match base.get(&site.key()) {
            None => {
                if !site.verdict.is_handled() {
                    regressions.push(Regression {
                        function: site.function.clone(),
                        caller: site.caller.clone(),
                        ordinal: site.ordinal,
                        kind: RegressionKind::NewUnhandledSite {
                            verdict: site.verdict,
                        },
                    });
                }
            }
            Some(old) => {
                if old.verdict.is_handled() && !site.verdict.is_handled() {
                    regressions.push(Regression {
                        function: site.function.clone(),
                        caller: site.caller.clone(),
                        ordinal: site.ordinal,
                        kind: RegressionKind::VerdictWorsened {
                            from: old.verdict,
                            to: site.verdict,
                        },
                    });
                }
            }
        }
    }
    regressions
}

fn class_str(class: CallSiteClass) -> &'static str {
    match class {
        CallSiteClass::Checked => "checked",
        CallSiteClass::PartiallyChecked => "partially_checked",
        CallSiteClass::Unchecked => "unchecked",
    }
}

fn class_from_str(text: &str) -> Option<CallSiteClass> {
    match text {
        "checked" => Some(CallSiteClass::Checked),
        "partially_checked" => Some(CallSiteClass::PartiallyChecked),
        "unchecked" => Some(CallSiteClass::Unchecked),
        _ => None,
    }
}

/// Stable string form of a verdict (used in JSON documents and CI output).
pub fn verdict_str(verdict: PropagationVerdict) -> &'static str {
    match verdict {
        PropagationVerdict::HandledLocally => "handled_locally",
        PropagationVerdict::PropagatedChecked => "propagated_checked",
        PropagationVerdict::PropagatedUnchecked => "propagated_unchecked",
        PropagationVerdict::Dropped => "dropped",
    }
}

fn verdict_from_str(text: &str) -> Option<PropagationVerdict> {
    match text {
        "handled_locally" => Some(PropagationVerdict::HandledLocally),
        "propagated_checked" => Some(PropagationVerdict::PropagatedChecked),
        "propagated_unchecked" => Some(PropagationVerdict::PropagatedUnchecked),
        "dropped" => Some(PropagationVerdict::Dropped),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        function: &str,
        caller: &str,
        ordinal: usize,
        verdict: PropagationVerdict,
    ) -> SiteRecord {
        SiteRecord {
            function: function.to_string(),
            caller: Some(caller.to_string()),
            ordinal,
            offset: 0,
            class: CallSiteClass::Unchecked,
            verdict,
            low_confidence: false,
            cfg_insns: 10,
            chain: Vec::new(),
            checked_eq: Vec::new(),
            checked_ineq: Vec::new(),
        }
    }

    fn findings(sites: Vec<SiteRecord>) -> TargetFindings {
        TargetFindings {
            target: "demo".to_string(),
            sites,
        }
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let mut site = record(
            "malloc",
            "xmalloc",
            0,
            PropagationVerdict::PropagatedChecked,
        );
        site.offset = 144;
        site.class = CallSiteClass::Unchecked;
        site.chain = vec!["a".to_string(), "b".to_string()];
        site.checked_eq = vec![-1];
        site.checked_ineq = vec![0];
        site.low_confidence = true;
        let doc = findings(vec![site]);
        let back = TargetFindings::from_json(&doc.to_json()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn unchanged_findings_have_no_regressions() {
        let doc = findings(vec![
            record("open", "f", 0, PropagationVerdict::HandledLocally),
            record("read", "g", 0, PropagationVerdict::Dropped),
        ]);
        assert!(diff_findings(&doc, &doc).is_empty());
    }

    #[test]
    fn handled_to_unhandled_is_a_regression() {
        let base = findings(vec![record(
            "malloc",
            "xmalloc",
            0,
            PropagationVerdict::PropagatedChecked,
        )]);
        let cur = findings(vec![record(
            "malloc",
            "xmalloc",
            0,
            PropagationVerdict::PropagatedUnchecked,
        )]);
        let regressions = diff_findings(&base, &cur);
        assert_eq!(regressions.len(), 1);
        assert!(matches!(
            &regressions[0].kind,
            RegressionKind::VerdictWorsened { .. }
        ));
        assert!(regressions[0].to_string().contains("xmalloc"));
    }

    #[test]
    fn new_unhandled_sites_fail_but_new_handled_sites_pass() {
        let base = findings(vec![]);
        let cur = findings(vec![
            record("open", "f", 0, PropagationVerdict::HandledLocally),
            record("read", "g", 0, PropagationVerdict::Dropped),
        ]);
        let regressions = diff_findings(&base, &cur);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].function, "read");
        assert!(matches!(
            &regressions[0].kind,
            RegressionKind::NewUnhandledSite { .. }
        ));
    }

    #[test]
    fn improvements_and_removals_pass() {
        let base = findings(vec![
            record("read", "g", 0, PropagationVerdict::Dropped),
            record("write", "h", 0, PropagationVerdict::PropagatedUnchecked),
        ]);
        // read's site got fixed (now handled), write's site disappeared.
        let cur = findings(vec![record(
            "read",
            "g",
            0,
            PropagationVerdict::HandledLocally,
        )]);
        assert!(diff_findings(&base, &cur).is_empty());
    }

    #[test]
    fn offset_shifts_do_not_disturb_the_diff() {
        let base = findings(vec![record("open", "f", 0, PropagationVerdict::Dropped)]);
        let mut moved = record("open", "f", 0, PropagationVerdict::Dropped);
        moved.offset = 9000;
        let cur = findings(vec![moved]);
        assert!(diff_findings(&base, &cur).is_empty());
    }
}
