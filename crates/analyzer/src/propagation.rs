//! Interprocedural error-propagation analysis.
//!
//! The intraprocedural pass (Algorithm 1) classifies each call site by the
//! checks visible *inside the calling function*. That misclassifies the
//! classic wrapper pattern: `xmalloc` returns `malloc`'s value untouched and
//! every one of *its* callers checks it, yet the site inside `xmalloc` looks
//! unchecked. This pass resolves such sites by walking the call graph
//! upward: when a call's return value escapes to the containing function's
//! return ([`SiteFinding::escapes_to_caller`]), the analysis asks whether
//! every caller of that function checks the forwarded value — recursively,
//! up to [`AnalysisConfig::max_depth`] levels.
//!
//! Every site gets one of four verdicts:
//!
//! | verdict | meaning |
//! |---|---|
//! | [`HandledLocally`] | checked inside the calling function (Algorithm 1 `C_yes`) |
//! | [`PropagatedChecked`] | unchecked locally, but forwarded and checked by every caller chain |
//! | [`PropagatedUnchecked`] | forwarded, and at least one caller chain never checks it |
//! | [`Dropped`] | neither checked nor forwarded — the error is silently discarded |
//!
//! `PropagatedUnchecked` and `Dropped` are the true injection targets;
//! `PropagatedChecked` sites are the wrapper false-positives this pass
//! exists to demote (see `FaultSpace::static_prune` in `lfi_campaign`).
//!
//! [`HandledLocally`]: PropagationVerdict::HandledLocally
//! [`PropagatedChecked`]: PropagationVerdict::PropagatedChecked
//! [`PropagatedUnchecked`]: PropagationVerdict::PropagatedUnchecked
//! [`Dropped`]: PropagationVerdict::Dropped

use std::collections::{BTreeMap, BTreeSet};

use lfi_arch::{Word, INSN_SIZE};
use lfi_obj::Module;
use serde::{Deserialize, Serialize};

use crate::callgraph::CallGraph;
use crate::callsite::{classify, AnalysisConfig, CallSiteClass, CallSiteReport};
use crate::cfg::{build_function_cfg, build_partial_cfg};
use crate::dataflow::analyze_checks;

/// Where a call site's error return is ultimately handled, if anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PropagationVerdict {
    /// The calling function checks the error codes itself.
    HandledLocally,
    /// The value escapes to the calling function's return and every caller
    /// chain checks it within the depth bound.
    PropagatedChecked,
    /// The value escapes, but some caller chain never checks it (or the
    /// chain exceeds the depth bound / recurses).
    PropagatedUnchecked,
    /// The value is neither checked nor forwarded: the error vanishes.
    Dropped,
}

impl PropagationVerdict {
    /// Whether the verdict proves the error return is checked somewhere.
    pub fn is_handled(&self) -> bool {
        matches!(
            self,
            PropagationVerdict::HandledLocally | PropagationVerdict::PropagatedChecked
        )
    }
}

/// One call site with its interprocedural verdict.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropagationFinding {
    /// Code offset of the call instruction in the program module.
    pub offset: u64,
    /// Function containing the call site.
    pub caller: Option<String>,
    /// The intraprocedural classification the verdict refines.
    pub class: CallSiteClass,
    /// The interprocedural verdict.
    pub verdict: PropagationVerdict,
    /// Inherited from the site finding: the classification was computed on a
    /// truncated CFG and must not be trusted for pruning.
    pub low_confidence: bool,
    /// For propagated verdicts: the caller functions the value was traced
    /// through (each level's handlers, deduplicated, in discovery order).
    pub chain: Vec<String>,
}

/// Interprocedural verdicts for every site of one (program, function) pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropagationReport {
    /// Target program (module) name.
    pub program: String,
    /// Library function whose call sites were analyzed.
    pub function: String,
    /// The error-code set `E` the verdicts are relative to.
    pub error_codes: Vec<Word>,
    /// Per-site verdicts, in the same order as the underlying
    /// [`CallSiteReport::sites`].
    pub findings: Vec<PropagationFinding>,
}

impl PropagationReport {
    /// Findings with a given verdict.
    pub fn with_verdict(
        &self,
        verdict: PropagationVerdict,
    ) -> impl Iterator<Item = &PropagationFinding> {
        self.findings.iter().filter(move |f| f.verdict == verdict)
    }
}

/// How one *caller* treats a value forwarded to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Disposition {
    /// Every call site of the wrapper checks (directly or transitively).
    Handled,
    /// Some call site neither checks nor safely forwards.
    Unhandled,
}

/// Memoized upward walk over the call graph.
struct Propagator<'a> {
    modules: BTreeMap<&'a str, &'a Module>,
    graph: &'a CallGraph,
    config: AnalysisConfig,
    /// Disposition cache per (function, error-code set). The error codes are
    /// part of the key because one wrapper may forward values from several
    /// library functions with different `E` sets.
    memo: BTreeMap<(String, Vec<Word>), Disposition>,
}

impl<'a> Propagator<'a> {
    fn new(modules: &'a [&'a Module], graph: &'a CallGraph, config: AnalysisConfig) -> Self {
        Propagator {
            modules: modules.iter().map(|m| (m.name.as_str(), *m)).collect(),
            graph,
            config,
            memo: BTreeMap::new(),
        }
    }

    /// Do all callers of `function` handle a value it forwards to them?
    /// `visiting` carries the recursion stack for cycle detection; a cycle
    /// is conservatively unhandled.
    fn caller_disposition(
        &mut self,
        function: &str,
        error_codes: &[Word],
        depth: usize,
        visiting: &mut BTreeSet<String>,
        chain: &mut Vec<String>,
    ) -> Disposition {
        let key = (function.to_string(), error_codes.to_vec());
        if let Some(&cached) = self.memo.get(&key) {
            return cached;
        }
        if depth >= self.config.max_depth || !visiting.insert(function.to_string()) {
            return Disposition::Unhandled;
        }
        let callers = self.graph.callers_of(function);
        let mut disposition = if callers.is_empty() {
            // Nobody consumes the wrapper's return value: the escaping error
            // has no handler anywhere.
            Disposition::Unhandled
        } else {
            Disposition::Handled
        };
        for site in callers {
            let Some(module) = self.modules.get(site.module.as_str()).copied() else {
                disposition = Disposition::Unhandled;
                break;
            };
            let entry = site.offset + INSN_SIZE;
            let cfg = match self.config.window {
                Some(window) => build_partial_cfg(module, entry, window),
                None => build_function_cfg(module, entry),
            };
            let summary = analyze_checks(&cfg);
            if classify(&summary, error_codes) == CallSiteClass::Checked {
                if let Some(caller) = &site.caller {
                    if !chain.contains(caller) {
                        chain.push(caller.clone());
                    }
                }
                continue;
            }
            if summary.returns_tracked {
                if let Some(caller) = site.caller.clone() {
                    if self.caller_disposition(&caller, error_codes, depth + 1, visiting, chain)
                        == Disposition::Handled
                    {
                        continue;
                    }
                }
            }
            disposition = Disposition::Unhandled;
            break;
        }
        visiting.remove(function);
        // Cache only clean (non-stack-dependent) results: when the walk was
        // cut by a cycle the answer depends on where the walk started.
        if visiting.is_empty() || disposition == Disposition::Handled {
            self.memo.insert(key, disposition);
        }
        disposition
    }
}

/// Refine a batch of intraprocedural reports into propagation verdicts.
///
/// `modules` is the set the call graph is built over — normally the target
/// program alone; include library modules too when cross-module wrappers
/// matter. Reports whose `program` is not among `modules` are skipped.
pub fn propagation_reports(
    modules: &[&Module],
    reports: &[CallSiteReport],
    config: AnalysisConfig,
) -> Vec<PropagationReport> {
    let mut sorted: Vec<&Module> = modules.to_vec();
    sorted.sort_by(|a, b| a.name.cmp(&b.name));
    let graph = CallGraph::build(&sorted);
    let mut propagator = Propagator::new(&sorted, &graph, config);
    let mut out = Vec::new();
    for report in reports {
        if !sorted.iter().any(|m| m.name == report.program) {
            continue;
        }
        let mut findings = Vec::new();
        for site in &report.sites {
            let mut chain = Vec::new();
            let verdict = if site.class == CallSiteClass::Checked {
                PropagationVerdict::HandledLocally
            } else if !site.escapes_to_caller {
                PropagationVerdict::Dropped
            } else if let Some(caller) = &site.caller {
                let mut visiting = BTreeSet::new();
                match propagator.caller_disposition(
                    caller,
                    &report.error_codes,
                    0,
                    &mut visiting,
                    &mut chain,
                ) {
                    Disposition::Handled => PropagationVerdict::PropagatedChecked,
                    Disposition::Unhandled => PropagationVerdict::PropagatedUnchecked,
                }
            } else {
                PropagationVerdict::PropagatedUnchecked
            };
            findings.push(PropagationFinding {
                offset: site.offset,
                caller: site.caller.clone(),
                class: site.class,
                verdict,
                low_confidence: site.low_confidence,
                chain,
            });
        }
        out.push(PropagationReport {
            program: report.program.clone(),
            function: report.function.clone(),
            error_codes: report.error_codes.clone(),
            findings,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use lfi_cc::Compiler;
    use lfi_obj::ModuleKind;

    use crate::callsite::analyze_call_sites;

    use super::*;

    fn compile(name: &str, src: &str) -> Module {
        Compiler::new(name, ModuleKind::SharedLib)
            .add_source("t.c", src)
            .compile()
            .unwrap()
    }

    fn verdicts_for(module: &Module, function: &str, error_codes: &[Word]) -> PropagationReport {
        let config = AnalysisConfig::default();
        let report = analyze_call_sites(module, function, error_codes, config);
        propagation_reports(&[module], &[report], config)
            .pop()
            .unwrap()
    }

    fn finding_in<'a>(report: &'a PropagationReport, caller: &str) -> &'a PropagationFinding {
        report
            .findings
            .iter()
            .find(|f| f.caller.as_deref() == Some(caller))
            .unwrap()
    }

    #[test]
    fn wrapper_checked_by_all_callers_is_propagated_checked() {
        // The xmalloc pattern: the wrapper forwards malloc's value, and both
        // of its callers check it. Intraprocedurally the wrapper site is
        // Unchecked; interprocedurally it is PropagatedChecked.
        let m = compile(
            "prog",
            r#"
            int xmalloc(int n) {
                return malloc(n);
            }
            int a() {
                int p = xmalloc(8);
                if (p == 0) { return -1; }
                return 0;
            }
            int b() {
                int p = xmalloc(16);
                if (p == 0) { return -2; }
                return 0;
            }
            "#,
        );
        let report = verdicts_for(&m, "malloc", &[0]);
        let wrapper = finding_in(&report, "xmalloc");
        assert_eq!(wrapper.class, CallSiteClass::Unchecked);
        assert_eq!(wrapper.verdict, PropagationVerdict::PropagatedChecked);
        assert_eq!(wrapper.chain, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn one_careless_caller_makes_it_propagated_unchecked() {
        let m = compile(
            "prog",
            r#"
            int xmalloc(int n) {
                return malloc(n);
            }
            int good() {
                int p = xmalloc(8);
                if (p == 0) { return -1; }
                return 0;
            }
            int careless() {
                int p = xmalloc(16);
                *p = 1;
                return 0;
            }
            "#,
        );
        let report = verdicts_for(&m, "malloc", &[0]);
        assert_eq!(
            finding_in(&report, "xmalloc").verdict,
            PropagationVerdict::PropagatedUnchecked
        );
    }

    #[test]
    fn locally_checked_sites_are_handled_locally() {
        let m = compile(
            "prog",
            r#"
            int f() {
                int p = malloc(8);
                if (p == 0) { return -1; }
                return 0;
            }
            "#,
        );
        let report = verdicts_for(&m, "malloc", &[0]);
        let finding = finding_in(&report, "f");
        assert_eq!(finding.verdict, PropagationVerdict::HandledLocally);
        assert!(finding.verdict.is_handled());
    }

    #[test]
    fn discarded_values_are_dropped() {
        let m = compile(
            "prog",
            r#"
            int f() {
                int fd = open("/x", O_RDONLY, 0);
                close(fd);
                return 0;
            }
            "#,
        );
        let report = verdicts_for(&m, "open", &[-1]);
        let finding = finding_in(&report, "f");
        assert_eq!(finding.verdict, PropagationVerdict::Dropped);
        assert!(!finding.verdict.is_handled());
    }

    #[test]
    fn wrapper_with_no_callers_is_propagated_unchecked() {
        let m = compile(
            "prog",
            r#"
            int orphan_wrapper(int n) {
                return malloc(n);
            }
            "#,
        );
        let report = verdicts_for(&m, "malloc", &[0]);
        assert_eq!(
            finding_in(&report, "orphan_wrapper").verdict,
            PropagationVerdict::PropagatedUnchecked
        );
    }

    #[test]
    fn two_level_wrapper_chains_resolve() {
        // inner forwards to outer, outer forwards to the real callers.
        let m = compile(
            "prog",
            r#"
            int inner(int n) {
                return malloc(n);
            }
            int outer(int n) {
                return inner(n);
            }
            int user() {
                int p = outer(8);
                if (p == 0) { return -1; }
                return 0;
            }
            "#,
        );
        let report = verdicts_for(&m, "malloc", &[0]);
        let finding = finding_in(&report, "inner");
        assert_eq!(finding.verdict, PropagationVerdict::PropagatedChecked);
        assert!(finding.chain.contains(&"user".to_string()));
    }

    #[test]
    fn recursion_is_conservatively_unhandled() {
        // spin's only caller is itself, forwarding the value in a cycle that
        // never checks it.
        let m = compile(
            "prog",
            r#"
            int spin(int n) {
                if (n > 0) { return spin(n - 1); }
                return malloc(n);
            }
            "#,
        );
        let report = verdicts_for(&m, "malloc", &[0]);
        assert_eq!(
            finding_in(&report, "spin").verdict,
            PropagationVerdict::PropagatedUnchecked
        );
    }

    #[test]
    fn depth_bound_limits_the_walk() {
        let m = compile(
            "prog",
            r#"
            int w1(int n) { return malloc(n); }
            int w2(int n) { return w1(n); }
            int w3(int n) { return w2(n); }
            int user() {
                int p = w3(8);
                if (p == 0) { return -1; }
                return 0;
            }
            "#,
        );
        let shallow = AnalysisConfig {
            max_depth: 1,
            ..AnalysisConfig::default()
        };
        let sites = analyze_call_sites(&m, "malloc", &[0], shallow);
        let report = propagation_reports(&[&m], &[sites], shallow).pop().unwrap();
        assert_eq!(
            finding_in(&report, "w1").verdict,
            PropagationVerdict::PropagatedUnchecked,
            "depth 1 cannot see past w2"
        );
        let deep = verdicts_for(&m, "malloc", &[0]);
        assert_eq!(
            finding_in(&deep, "w1").verdict,
            PropagationVerdict::PropagatedChecked,
            "default depth resolves the full chain"
        );
    }
}
