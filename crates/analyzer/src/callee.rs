//! Callee-side static fault analysis of library modules.
//!
//! The runtime profiler (`lfi_profiler`) infers each exported function's
//! error cases with a *linear* scan of its instruction stream — fast, but
//! blind to control flow: constants and pending `errno` stores leak across
//! paths that can never execute together. This module re-derives the same
//! information *path-sensitively*: a bounded DFS over the function's CFG
//! tracks per-register constants and the pending errno store along each
//! path, recording an error case only at a `ret` the path actually reaches.
//!
//! The two views are cross-checked by [`cross_check`]: every disagreement —
//! a function present in one profile only, differing error-case sets, or a
//! differing returns-dynamic flag — becomes a typed [`ProfileDivergence`]
//! finding. Agreements corroborate both analyses; divergences localize
//! whichever heuristic went wrong (usually the linear scan merging paths).

use std::collections::{BTreeMap, HashMap};

use lfi_arch::{CallConv, Insn, Reg, Word};
use lfi_obj::{Module, SymKind};
use lfi_profiler::{is_error_value, ErrorCase, FaultProfile};
use serde::{Deserialize, Serialize};

use crate::cfg::{build_function_cfg, PartialCfg};

/// Per-path step budget of one function walk; exceeding it marks the static
/// profile truncated rather than silently under-reporting.
const STEP_CAP: usize = 50_000;

/// How many times one instruction may be re-entered across all paths (loops
/// and heavy diamonds) before the walk gives up on further paths through it.
const VISIT_CAP: usize = 16;

/// Path-sensitive fault profile of one exported function.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticFunctionProfile {
    /// Function name.
    pub name: String,
    /// Distinct error cases reachable along some path, sorted.
    pub error_cases: Vec<ErrorCase>,
    /// Whether some path returns a computed (non-constant) value.
    pub returns_dynamic: bool,
    /// The path walk hit [`STEP_CAP`] or [`VISIT_CAP`]: the case list is a
    /// lower bound, not an enumeration.
    pub truncated: bool,
}

impl StaticFunctionProfile {
    /// The distinct error return values (the set `E` of Algorithm 1).
    pub fn error_return_values(&self) -> Vec<Word> {
        let mut values: Vec<Word> = self.error_cases.iter().map(|c| c.retval).collect();
        values.sort_unstable();
        values.dedup();
        values
    }
}

/// Path-sensitive fault profile of a whole library module.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticFaultProfile {
    /// Library (module) name.
    pub library: String,
    /// Per-function profiles, keyed by function name.
    pub functions: BTreeMap<String, StaticFunctionProfile>,
}

impl StaticFaultProfile {
    /// Profile of a single function, if the library exports it.
    pub fn function(&self, name: &str) -> Option<&StaticFunctionProfile> {
        self.functions.get(name)
    }
}

/// One disagreement between the static (path-based) and runtime (linear)
/// fault profiles of a library.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProfileDivergence {
    /// The function appears in the static profile only.
    OnlyInStatic {
        /// Function name.
        function: String,
    },
    /// The function appears in the runtime profiler's output only.
    OnlyInProfiler {
        /// Function name.
        function: String,
    },
    /// The error-case sets differ.
    ErrorCasesDiffer {
        /// Function name.
        function: String,
        /// Cases the path walk found that the linear scan missed.
        missing_in_profiler: Vec<ErrorCase>,
        /// Cases the linear scan reports that no path actually produces.
        missing_in_static: Vec<ErrorCase>,
    },
    /// The returns-dynamic flags differ.
    DynamicFlagDiffers {
        /// Function name.
        function: String,
        /// The path walk's verdict.
        static_value: bool,
        /// The linear scan's verdict.
        profiler_value: bool,
    },
}

impl ProfileDivergence {
    /// The function the divergence is about.
    pub fn function(&self) -> &str {
        match self {
            ProfileDivergence::OnlyInStatic { function }
            | ProfileDivergence::OnlyInProfiler { function }
            | ProfileDivergence::ErrorCasesDiffer { function, .. }
            | ProfileDivergence::DynamicFlagDiffers { function, .. } => function,
        }
    }
}

/// Abstract state carried along one path.
#[derive(Clone)]
struct PathState {
    /// Last constant loaded into each register, if still valid.
    consts: Vec<Option<Word>>,
    /// The last write to the return register was non-constant.
    ret_dynamic: bool,
    /// errno constant stored on this path, not yet consumed by a `ret`.
    pending_errno: Option<Word>,
}

impl PathState {
    fn initial() -> PathState {
        PathState {
            consts: vec![None; Reg::COUNT],
            ret_dynamic: false,
            pending_errno: None,
        }
    }
}

/// Walk every path of one function CFG, collecting reachable error cases.
fn profile_paths(module: &Module, cfg: &PartialCfg, profile: &mut StaticFunctionProfile) {
    let mut steps = 0usize;
    let mut visits: HashMap<u64, usize> = HashMap::new();
    let mut stack: Vec<(u64, PathState)> = vec![(cfg.entry, PathState::initial())];
    profile.truncated |= cfg.truncated;
    while let Some((offset, mut state)) = stack.pop() {
        let Some(insn) = cfg.nodes.get(&offset) else {
            continue;
        };
        steps += 1;
        if steps > STEP_CAP {
            profile.truncated = true;
            break;
        }
        let seen = visits.entry(offset).or_insert(0);
        *seen += 1;
        if *seen > VISIT_CAP {
            profile.truncated = true;
            continue;
        }
        match insn {
            Insn::MovI { dst, imm } => {
                state.consts[dst.index()] = Some(*imm);
                if *dst == Reg::RET {
                    state.ret_dynamic = false;
                }
            }
            Insn::TlsStore { sym, src } => {
                let is_errno = module
                    .symrefs
                    .get(*sym as usize)
                    .map(|s| s.name == CallConv::ERRNO_SYMBOL)
                    .unwrap_or(false);
                if is_errno {
                    state.pending_errno = state.consts[src.index()];
                }
            }
            Insn::Ret => {
                match state.consts[Reg::RET.index()] {
                    Some(retval) => {
                        if is_error_value(retval, state.pending_errno) {
                            let case = ErrorCase {
                                retval,
                                errno: state.pending_errno,
                            };
                            if !profile.error_cases.contains(&case) {
                                profile.error_cases.push(case);
                            }
                        }
                    }
                    None => {
                        if state.ret_dynamic {
                            profile.returns_dynamic = true;
                        }
                    }
                }
                continue; // path ends here
            }
            other => {
                if let Some(written) = other.written_reg() {
                    state.consts[written.index()] = None;
                    if written == Reg::RET {
                        state.ret_dynamic = true;
                    }
                }
                if matches!(other, Insn::Sys { .. }) || other.is_call() {
                    state.consts[Reg::RET.index()] = None;
                    state.ret_dynamic = true;
                }
            }
        }
        match cfg.successors(offset) {
            [] => {}
            [only] => stack.push((*only, state)),
            many => {
                for succ in many {
                    stack.push((*succ, state.clone()));
                }
            }
        }
    }
    profile.error_cases.sort();
}

/// Profile every exported function of a library module path-sensitively.
pub fn static_profile_library(module: &Module) -> StaticFaultProfile {
    let mut functions = BTreeMap::new();
    for export in &module.exports {
        if export.kind != SymKind::Func {
            continue;
        }
        let mut profile = StaticFunctionProfile {
            name: export.name.clone(),
            ..StaticFunctionProfile::default()
        };
        let cfg = build_function_cfg(module, export.offset);
        profile_paths(module, &cfg, &mut profile);
        functions.insert(export.name.clone(), profile);
    }
    StaticFaultProfile {
        library: module.name.clone(),
        functions,
    }
}

/// Cross-check the path-based profile against the runtime profiler's view of
/// the same library. Returns one typed finding per disagreement, ordered by
/// function name; an empty vector means the analyses corroborate each other.
pub fn cross_check(
    static_profile: &StaticFaultProfile,
    profiler: &FaultProfile,
) -> Vec<ProfileDivergence> {
    let mut findings = Vec::new();
    for (name, stat) in &static_profile.functions {
        let Some(dyn_profile) = profiler.function(name) else {
            findings.push(ProfileDivergence::OnlyInStatic {
                function: name.clone(),
            });
            continue;
        };
        let missing_in_profiler: Vec<ErrorCase> = stat
            .error_cases
            .iter()
            .filter(|c| !dyn_profile.error_cases.contains(c))
            .copied()
            .collect();
        let missing_in_static: Vec<ErrorCase> = dyn_profile
            .error_cases
            .iter()
            .filter(|c| !stat.error_cases.contains(c))
            .copied()
            .collect();
        if !missing_in_profiler.is_empty() || !missing_in_static.is_empty() {
            findings.push(ProfileDivergence::ErrorCasesDiffer {
                function: name.clone(),
                missing_in_profiler,
                missing_in_static,
            });
        }
        if stat.returns_dynamic != dyn_profile.returns_dynamic {
            findings.push(ProfileDivergence::DynamicFlagDiffers {
                function: name.clone(),
                static_value: stat.returns_dynamic,
                profiler_value: dyn_profile.returns_dynamic,
            });
        }
    }
    for name in profiler.functions.keys() {
        if !static_profile.functions.contains_key(name) {
            findings.push(ProfileDivergence::OnlyInProfiler {
                function: name.clone(),
            });
        }
    }
    findings.sort_by(|a, b| a.function().cmp(b.function()));
    findings
}

#[cfg(test)]
mod tests {
    use lfi_arch::errno;
    use lfi_asm::assemble_text;
    use lfi_profiler::profile_library;

    use super::*;

    #[test]
    fn path_walk_matches_linear_scan_on_single_path_code() {
        let lib = assemble_text(
            r#"
            .module demo lib
            .func fails
                movi r7, EIO
                tlsst errno, r7
                movi r0, -1
                ret
            .func computes
                sys read
                ret
            "#,
        )
        .unwrap();
        let stat = static_profile_library(&lib);
        let fails = stat.function("fails").unwrap();
        assert_eq!(
            fails.error_cases,
            vec![ErrorCase {
                retval: -1,
                errno: Some(errno::EIO)
            }]
        );
        assert!(!fails.truncated);
        assert!(stat.function("computes").unwrap().returns_dynamic);
        assert!(cross_check(&stat, &profile_library(&lib)).is_empty());
    }

    #[test]
    fn path_sensitivity_rejects_cross_path_artifacts() {
        // After the branch join the linear scan still believes `r0 == -1`
        // and records a phantom `(-1, no errno)` case at the success `ret`
        // (and misses that the success path returns a computed value). The
        // path walk follows each path separately and the cross-check turns
        // both disagreements into typed findings.
        let lib = assemble_text(
            r#"
            .module demo lib
            .func my_read
                sys read
                cmpi r0, 0
                jge ok
                movi r7, EIO
                tlsst errno, r7
                movi r0, -1
                ret
            ok:
                ret
            "#,
        )
        .unwrap();
        let stat = static_profile_library(&lib);
        let my_read = stat.function("my_read").unwrap();
        assert_eq!(
            my_read.error_cases,
            vec![ErrorCase {
                retval: -1,
                errno: Some(errno::EIO)
            }],
            "only the real error path's case survives"
        );
        assert!(
            my_read.returns_dynamic,
            "the success path returns sys' value"
        );
        let linear = profile_library(&lib);
        let divergences = cross_check(&stat, &linear);
        assert!(
            divergences.iter().any(|d| matches!(
                d,
                ProfileDivergence::ErrorCasesDiffer { function, missing_in_static, .. }
                    if function == "my_read"
                        && missing_in_static.contains(&ErrorCase { retval: -1, errno: None })
            )),
            "the linear scan's phantom case must be surfaced: {divergences:?}"
        );
        assert!(divergences
            .iter()
            .any(|d| matches!(d, ProfileDivergence::DynamicFlagDiffers { .. })));
    }

    #[test]
    fn loops_terminate_and_flag_truncation_only_when_cut() {
        let lib = assemble_text(
            r#"
            .module demo lib
            .func spin
                movi r1, 10
            again:
                cmpi r1, 0
                je done
                jmp again
            done:
                movi r0, -1
                ret
            "#,
        )
        .unwrap();
        let stat = static_profile_library(&lib);
        let spin = stat.function("spin").unwrap();
        assert_eq!(spin.error_return_values(), vec![-1]);
        assert!(
            spin.truncated,
            "the unbounded loop was cut by the visit cap"
        );
    }

    #[test]
    fn cross_check_on_the_simulated_libc_is_deterministic() {
        let libc = lfi_libc::build();
        let stat = static_profile_library(&libc);
        let linear = profile_library(&libc);
        let first = cross_check(&stat, &linear);
        let second = cross_check(&static_profile_library(&libc), &profile_library(&libc));
        assert_eq!(first, second);
        // Every export the profiler sees, the static walk sees too.
        assert!(!first
            .iter()
            .any(|d| matches!(d, ProfileDivergence::OnlyInProfiler { .. })));
        assert!(!first
            .iter()
            .any(|d| matches!(d, ProfileDivergence::OnlyInStatic { .. })));
    }
}
