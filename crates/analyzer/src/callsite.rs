//! Call-site classification (Algorithm 1) and accuracy accounting (Table 4).

use std::collections::BTreeSet;

use lfi_arch::{Word, INSN_SIZE};
use lfi_obj::Module;
use lfi_profiler::FaultProfile;
use serde::{Deserialize, Serialize};

use crate::cfg::{build_function_cfg, build_partial_cfg};
use crate::dataflow::{analyze_checks, CheckSummary};

/// Analyzer configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Number of post-call instructions included in the partial CFG, or
    /// `None` to walk the full function (the default). The paper's windowed
    /// mode (`Some(100)`) is kept for fidelity experiments; a windowed walk
    /// that actually hits its budget marks its findings low-confidence.
    pub window: Option<usize>,
    /// Maximum caller-chain depth followed by the interprocedural
    /// propagation pass (see [`crate::propagation`]).
    pub max_depth: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            window: None,
            max_depth: 4,
        }
    }
}

/// Classification of one call site, following Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CallSiteClass {
    /// All error codes are checked (`C_yes`).
    Checked,
    /// Only some error codes are checked (`C_part`).
    PartiallyChecked,
    /// No error code is checked (`C_not`).
    Unchecked,
}

/// One analyzed call site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteFinding {
    /// Code offset of the `callsym` instruction in the target binary.
    pub offset: u64,
    /// Name of the function containing the call site, if known.
    pub caller: Option<String>,
    /// Source file and line of the call site, if debug info is present.
    pub source: Option<(String, u32)>,
    /// Classification.
    pub class: CallSiteClass,
    /// Error codes found checked by equality.
    pub checked_eq: Vec<Word>,
    /// Literals found checked by inequality.
    pub checked_ineq: Vec<Word>,
    /// Instructions in the CFG the classification was computed over.
    pub cfg_insns: usize,
    /// The CFG walk was cut short by its instruction budget: the class is a
    /// verdict about a *prefix* of the post-call code and must not be treated
    /// as definitive (a check may sit just past the truncation point).
    pub low_confidence: bool,
    /// The call's return value can reach a `ret` of the containing function
    /// untouched — the containing function may hand it to its own callers
    /// (the wrapper shape the propagation pass resolves).
    pub escapes_to_caller: bool,
}

/// The analysis result for one (program, library function) pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallSiteReport {
    /// Target program (module) name.
    pub program: String,
    /// Library function analyzed.
    pub function: String,
    /// The error-code set `E` used for classification.
    pub error_codes: Vec<Word>,
    /// Per-site findings, ordered by code offset.
    pub sites: Vec<SiteFinding>,
}

impl CallSiteReport {
    /// Sites classified as fully checked.
    pub fn checked(&self) -> Vec<&SiteFinding> {
        self.sites
            .iter()
            .filter(|s| s.class == CallSiteClass::Checked)
            .collect()
    }

    /// Sites classified as partially checked.
    pub fn partially_checked(&self) -> Vec<&SiteFinding> {
        self.sites
            .iter()
            .filter(|s| s.class == CallSiteClass::PartiallyChecked)
            .collect()
    }

    /// Sites classified as completely unchecked.
    pub fn unchecked(&self) -> Vec<&SiteFinding> {
        self.sites
            .iter()
            .filter(|s| s.class == CallSiteClass::Unchecked)
            .collect()
    }

    /// Iterate over the sites with a given classification.
    pub fn sites_with_class(&self, class: CallSiteClass) -> impl Iterator<Item = &SiteFinding> {
        self.sites.iter().filter(move |s| s.class == class)
    }
}

/// Iterate over every `(function, site)` pair of a batch of reports — the
/// flattened view campaign engines annotate their fault space from.
pub fn iter_sites(
    reports: &[CallSiteReport],
) -> impl Iterator<Item = (&CallSiteReport, &SiteFinding)> {
    reports
        .iter()
        .flat_map(|r| r.sites.iter().map(move |s| (r, s)))
}

/// Iterate over every unchecked `(function, site)` pair of a batch of
/// reports — the paper's prime injection targets.
pub fn unchecked_sites(
    reports: &[CallSiteReport],
) -> impl Iterator<Item = (&CallSiteReport, &SiteFinding)> {
    iter_sites(reports).filter(|(_, s)| s.class == CallSiteClass::Unchecked)
}

/// Classify a check summary against the error-code set `E`, per Algorithm 1.
pub fn classify(summary: &CheckSummary, error_codes: &[Word]) -> CallSiteClass {
    let eq_in_e: BTreeSet<Word> = summary
        .chk_eq
        .iter()
        .copied()
        .filter(|v| error_codes.contains(v))
        .collect();
    let covers_all = !error_codes.is_empty() && error_codes.iter().all(|e| eq_in_e.contains(e));
    if covers_all || !summary.chk_ineq.is_empty() {
        CallSiteClass::Checked
    } else if !eq_in_e.is_empty() {
        CallSiteClass::PartiallyChecked
    } else {
        CallSiteClass::Unchecked
    }
}

/// Analyze every call site of `function` in `program`, classifying each
/// against the error codes `error_codes` (usually taken from the library's
/// fault profile).
pub fn analyze_call_sites(
    program: &Module,
    function: &str,
    error_codes: &[Word],
    config: AnalysisConfig,
) -> CallSiteReport {
    let mut sites = Vec::new();
    for offset in program.call_sites_of(function) {
        let entry = offset + INSN_SIZE;
        let cfg = match config.window {
            Some(window) => build_partial_cfg(program, entry, window),
            None => build_function_cfg(program, entry),
        };
        let summary = analyze_checks(&cfg);
        let class = classify(&summary, error_codes);
        sites.push(SiteFinding {
            offset,
            caller: program.containing_function(offset).map(|e| e.name.clone()),
            source: program
                .line_for_offset(offset)
                .map(|(f, l)| (f.to_string(), l)),
            class,
            checked_eq: summary.chk_eq.iter().copied().collect(),
            checked_ineq: summary.chk_ineq.iter().copied().collect(),
            cfg_insns: cfg.insn_count(),
            low_confidence: cfg.truncated,
            escapes_to_caller: summary.returns_tracked,
        });
    }
    CallSiteReport {
        program: program.name.clone(),
        function: function.to_string(),
        error_codes: error_codes.to_vec(),
        sites,
    }
}

/// Analyze all imported functions of a program that appear in a library fault
/// profile, producing one report per function that has at least one call site.
pub fn analyze_program(
    program: &Module,
    profile: &FaultProfile,
    config: AnalysisConfig,
) -> Vec<CallSiteReport> {
    let mut reports = Vec::new();
    for function in program.imported_functions() {
        let Some(func_profile) = profile.function(&function) else {
            continue;
        };
        let error_codes = func_profile.error_return_values();
        if error_codes.is_empty() {
            continue;
        }
        let report = analyze_call_sites(program, &function, &error_codes, config);
        if !report.sites.is_empty() {
            reports.push(report);
        }
    }
    reports
}

/// Precision / recall / F1 of one class of a binary classification.
///
/// The empty-denominator convention matches [`ConfusionMatrix::accuracy`]: a
/// metric whose denominator is zero (no predictions, or no actual members of
/// the class) is reported as a vacuous `1.0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassMetrics {
    /// Of the sites assigned to this class, the fraction that belong to it.
    pub precision: f64,
    /// Of the sites belonging to this class, the fraction assigned to it.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl ClassMetrics {
    fn from_counts(tp: usize, fp: usize, fn_: usize) -> ClassMetrics {
        let ratio = |num: usize, den: usize| {
            if den == 0 {
                1.0
            } else {
                num as f64 / den as f64
            }
        };
        let precision = ratio(tp, tp + fp);
        let recall = ratio(tp, tp + fn_);
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        ClassMetrics {
            precision,
            recall,
            f1,
        }
    }
}

/// Confusion matrix for injection-target identification, with the paper's
/// orientation: a *positive* is "the analyzer says the error return is not
/// checked".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Analyzer says unchecked, and the site really does not check.
    pub true_positives: usize,
    /// Analyzer says checked, and the site really checks.
    pub true_negatives: usize,
    /// Analyzer says unchecked, but the site actually checks.
    pub false_positives: usize,
    /// Analyzer says checked, but the site actually does not check.
    pub false_negatives: usize,
}

impl ConfusionMatrix {
    /// Accuracy as defined in §7.2 of the paper.
    pub fn accuracy(&self) -> f64 {
        let total =
            self.true_positives + self.true_negatives + self.false_positives + self.false_negatives;
        if total == 0 {
            return 1.0;
        }
        (self.true_positives + self.true_negatives) as f64 / total as f64
    }

    /// Metrics of the positive ("unchecked") class.
    pub fn unchecked_metrics(&self) -> ClassMetrics {
        ClassMetrics::from_counts(
            self.true_positives,
            self.false_positives,
            self.false_negatives,
        )
    }

    /// Metrics of the negative ("checked") class.
    pub fn checked_metrics(&self) -> ClassMetrics {
        ClassMetrics::from_counts(
            self.true_negatives,
            self.false_negatives,
            self.false_positives,
        )
    }

    /// Merge another matrix's counts into this one (for program-level and
    /// overall Table 4 rollups).
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.true_positives += other.true_positives;
        self.true_negatives += other.true_negatives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
    }
}

/// Compare a report against ground truth: the set of call-site offsets that
/// truly check their error return (everything else truly does not).
pub fn confusion_matrix(report: &CallSiteReport, truly_checked: &BTreeSet<u64>) -> ConfusionMatrix {
    let mut m = ConfusionMatrix::default();
    for site in &report.sites {
        let says_checked = site.class == CallSiteClass::Checked;
        let really_checked = truly_checked.contains(&site.offset);
        match (says_checked, really_checked) {
            (true, true) => m.true_negatives += 1,
            (false, false) => m.true_positives += 1,
            (false, true) => m.false_positives += 1,
            (true, false) => m.false_negatives += 1,
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use lfi_cc::Compiler;
    use lfi_obj::ModuleKind;

    use super::*;

    fn compile(src: &str) -> Module {
        Compiler::new("target", ModuleKind::SharedLib)
            .add_source("target.c", src)
            .compile()
            .unwrap()
    }

    #[test]
    fn classifies_checked_partial_and_unchecked_sites() {
        let module = compile(
            r#"
            int fully_checked() {
                int fd = open("/a", O_RDONLY, 0);
                if (fd == -1) { return -1; }
                return fd;
            }
            int inequality_checked() {
                int fd = open("/b", O_RDONLY, 0);
                if (fd < 0) { return -1; }
                return fd;
            }
            int unchecked() {
                int fd = open("/c", O_RDONLY, 0);
                close(fd);
                return 0;
            }
            "#,
        );
        let report = analyze_call_sites(&module, "open", &[-1], AnalysisConfig::default());
        assert_eq!(report.sites.len(), 3);
        assert_eq!(report.sites[0].class, CallSiteClass::Checked);
        assert_eq!(report.sites[1].class, CallSiteClass::Checked);
        assert_eq!(report.sites[2].class, CallSiteClass::Unchecked);
        assert_eq!(report.checked().len(), 2);
        assert_eq!(report.unchecked().len(), 1);
        assert_eq!(
            report.sites[0].caller.as_deref(),
            Some("fully_checked"),
            "caller attribution"
        );
        for site in &report.sites {
            assert!(!site.low_confidence, "full-function walks are definitive");
            assert!(site.cfg_insns > 0);
        }
    }

    #[test]
    fn truncated_walks_are_flagged_low_confidence() {
        // A two-instruction window cannot reach the check, so the site is
        // (wrongly) classified unchecked — but the finding says so itself.
        let module = compile(
            r#"
            int f() {
                int fd = open("/a", O_RDONLY, 0);
                if (fd == -1) { return -1; }
                return fd;
            }
            "#,
        );
        let windowed = AnalysisConfig {
            window: Some(2),
            ..AnalysisConfig::default()
        };
        let report = analyze_call_sites(&module, "open", &[-1], windowed);
        assert!(report.sites[0].low_confidence);
        assert_eq!(report.sites[0].cfg_insns, 2);
        let full = analyze_call_sites(&module, "open", &[-1], AnalysisConfig::default());
        assert!(!full.sites[0].low_confidence);
        assert_eq!(full.sites[0].class, CallSiteClass::Checked);
    }

    #[test]
    fn partial_checks_are_detected_with_multiple_error_codes() {
        // read's profile is {-1}; simulate a function whose error set is
        // {-1, 0} (e.g. an API returning 0 or -1 on different failures): the
        // caller checks only one of them.
        let module = compile(
            r#"
            int partially() {
                int n = recv_message(5);
                if (n == -1) { return 1; }
                return n;
            }
            "#,
        );
        let report =
            analyze_call_sites(&module, "recv_message", &[-1, 0], AnalysisConfig::default());
        assert_eq!(report.sites[0].class, CallSiteClass::PartiallyChecked);
    }

    #[test]
    fn null_pointer_checks_on_malloc_are_recognized() {
        let module = compile(
            r#"
            int good() {
                int p = malloc(64);
                if (p == 0) { return -1; }
                *p = 1;
                return 0;
            }
            int bad() {
                int p = malloc(64);
                *p = 1;
                return 0;
            }
            "#,
        );
        let report = analyze_call_sites(&module, "malloc", &[0], AnalysisConfig::default());
        assert_eq!(report.sites[0].class, CallSiteClass::Checked);
        assert_eq!(report.sites[1].class, CallSiteClass::Unchecked);
    }

    #[test]
    fn checks_of_unrelated_constants_do_not_count() {
        // The caller compares the return value against 7, which is not an
        // error code: Algorithm 1 line 10 sends this to C_not.
        let module = compile(
            r#"
            int weird() {
                int n = read(0, 0, 16);
                if (n == 7) { return 1; }
                return 0;
            }
            "#,
        );
        let report = analyze_call_sites(&module, "read", &[-1], AnalysisConfig::default());
        assert_eq!(report.sites[0].class, CallSiteClass::Unchecked);
    }

    #[test]
    fn wrapper_return_sites_are_marked_escaping() {
        let module = compile(
            r#"
            int xmalloc(int n) {
                return malloc(n);
            }
            int local_user() {
                int p = malloc(8);
                *p = 1;
                return 0;
            }
            "#,
        );
        let report = analyze_call_sites(&module, "malloc", &[0], AnalysisConfig::default());
        let by_caller = |name: &str| {
            report
                .sites
                .iter()
                .find(|s| s.caller.as_deref() == Some(name))
                .unwrap()
        };
        let wrapper = by_caller("xmalloc");
        assert_eq!(wrapper.class, CallSiteClass::Unchecked);
        assert!(wrapper.escapes_to_caller, "return malloc(n) escapes");
        let user = by_caller("local_user");
        assert!(!user.escapes_to_caller, "value consumed locally");
    }

    #[test]
    fn analyze_program_uses_the_fault_profile() {
        let module = compile(
            r#"
            int f() {
                int p = malloc(8);
                if (p == 0) { return -1; }
                int fd = open("/x", O_RDONLY, 0);
                return fd;
            }
            "#,
        );
        let libc = lfi_libc::build();
        let profile = lfi_profiler::profile_library(&libc);
        let reports = analyze_program(&module, &profile, AnalysisConfig::default());
        let funcs: Vec<&str> = reports.iter().map(|r| r.function.as_str()).collect();
        assert!(funcs.contains(&"malloc"));
        assert!(funcs.contains(&"open"));
        let open_report = reports.iter().find(|r| r.function == "open").unwrap();
        assert_eq!(open_report.sites[0].class, CallSiteClass::Unchecked);
        let malloc_report = reports.iter().find(|r| r.function == "malloc").unwrap();
        assert_eq!(malloc_report.sites[0].class, CallSiteClass::Checked);
    }

    #[test]
    fn site_iteration_flattens_reports() {
        let module = compile(
            r#"
            int a() { int fd = open("/a", O_RDONLY, 0); if (fd == -1) { return 1; } return 0; }
            int b() { int fd = open("/b", O_RDONLY, 0); return fd; }
            "#,
        );
        let reports = vec![analyze_call_sites(
            &module,
            "open",
            &[-1],
            AnalysisConfig::default(),
        )];
        assert_eq!(iter_sites(&reports).count(), 2);
        let unchecked: Vec<_> = unchecked_sites(&reports).collect();
        assert_eq!(unchecked.len(), 1);
        assert_eq!(unchecked[0].0.function, "open");
        assert_eq!(unchecked[0].1.caller.as_deref(), Some("b"));
        assert_eq!(
            reports[0].sites_with_class(CallSiteClass::Checked).count(),
            1
        );
    }

    #[test]
    fn confusion_matrix_and_accuracy() {
        let module = compile(
            r#"
            int a() { int fd = open("/a", O_RDONLY, 0); if (fd == -1) { return 1; } return 0; }
            int b() { int fd = open("/b", O_RDONLY, 0); return fd; }
            "#,
        );
        let report = analyze_call_sites(&module, "open", &[-1], AnalysisConfig::default());
        let truly_checked: BTreeSet<u64> = report
            .sites
            .iter()
            .filter(|s| s.caller.as_deref() == Some("a"))
            .map(|s| s.offset)
            .collect();
        let m = confusion_matrix(&report, &truly_checked);
        assert_eq!(m.true_negatives, 1);
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.false_positives, 0);
        assert_eq!(m.false_negatives, 0);
        assert!((m.accuracy() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn per_class_precision_recall_f1() {
        let m = ConfusionMatrix {
            true_positives: 3,
            true_negatives: 4,
            false_positives: 1,
            false_negatives: 2,
        };
        let unchecked = m.unchecked_metrics();
        assert!((unchecked.precision - 0.75).abs() < 1e-9);
        assert!((unchecked.recall - 0.6).abs() < 1e-9);
        assert!((unchecked.f1 - 2.0 * 0.75 * 0.6 / 1.35).abs() < 1e-9);
        let checked = m.checked_metrics();
        assert!((checked.precision - 4.0 / 6.0).abs() < 1e-9);
        assert!((checked.recall - 0.8).abs() < 1e-9);
        // A perfect matrix reports vacuous 1.0 everywhere.
        let perfect = ConfusionMatrix {
            true_positives: 2,
            true_negatives: 2,
            ..ConfusionMatrix::default()
        };
        assert_eq!(perfect.unchecked_metrics().f1, 1.0);
        assert_eq!(perfect.checked_metrics().f1, 1.0);
        // Merging accumulates counts.
        let mut acc = ConfusionMatrix::default();
        acc.merge(&m);
        acc.merge(&perfect);
        assert_eq!(acc.true_positives, 5);
        assert_eq!(acc.true_negatives, 6);
    }
}
