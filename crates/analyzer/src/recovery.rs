//! Recovery-code identification.
//!
//! Table 3 of the paper measures how much *recovery code* the default test
//! suites cover with and without LFI. The paper identified recovery blocks by
//! hand in lcov output; here we identify them automatically from the binary:
//! a recovery block is code reachable only through the "error" edge of a
//! return-value check that follows a library call (the edge taken when the
//! return value equals one of the function's error codes).

use std::collections::BTreeSet;

use lfi_arch::{Insn, Word, INSN_SIZE};
use lfi_obj::Module;
use lfi_profiler::FaultProfile;

use crate::cfg::{build_partial_cfg, PartialCfg, DEFAULT_WINDOW};
use crate::dataflow::analyze_checks;

/// The recovery code discovered in a module.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryMap {
    /// Instruction offsets belonging to recovery blocks.
    pub offsets: BTreeSet<u64>,
    /// Source lines (file, line) belonging to recovery blocks.
    pub lines: BTreeSet<(String, u32)>,
}

impl RecoveryMap {
    /// Number of recovery source lines.
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }
}

/// Find the error edge of a check: given a `cmpi tracked, imm` at `cmp_off`
/// whose consumer is a conditional jump, return the successor offset taken
/// when the compared value is an error code, and the one taken otherwise.
fn error_edge(
    cfg: &PartialCfg,
    cmp_off: u64,
    imm: Word,
    error_codes: &[Word],
) -> Option<(u64, u64)> {
    let &jump_off = cfg
        .successors(cmp_off)
        .iter()
        .find(|off| matches!(cfg.nodes.get(off), Some(Insn::J { .. })))?;
    let Some(Insn::J { cond, target }) = cfg.nodes.get(&jump_off) else {
        return None;
    };
    let fall_through = jump_off + INSN_SIZE;
    let taken = *target as u64;
    // Does the branch get taken when the return value is an error code?
    let taken_on_error = error_codes.iter().any(|&e| cond.holds(e.cmp(&imm)));
    let taken_on_success = cond.holds(1.cmp(&imm)) || cond.holds(100.cmp(&imm));
    if taken_on_error && !taken_on_success {
        Some((taken, fall_through))
    } else if !taken_on_error {
        Some((fall_through, taken))
    } else {
        // The branch fires for both error and success values; not a useful
        // error/success split.
        None
    }
}

/// Identify the recovery code downstream of every call site of the profiled
/// library functions in `module`.
pub fn recovery_offsets(
    module: &Module,
    profile: &FaultProfile,
    functions: &[String],
) -> RecoveryMap {
    let mut map = RecoveryMap::default();
    for function in functions {
        let Some(func_profile) = profile.function(function) else {
            continue;
        };
        let error_codes = func_profile.error_return_values();
        if error_codes.is_empty() {
            continue;
        }
        for site in module.call_sites_of(function) {
            let cfg = build_partial_cfg(module, site + INSN_SIZE, DEFAULT_WINDOW);
            // Re-run the check discovery, but this time keep the comparison
            // locations so we can split edges.
            let summary = analyze_checks(&cfg);
            if summary.is_empty() {
                continue;
            }
            for (&off, insn) in &cfg.nodes {
                let Insn::CmpI { imm, .. } = insn else {
                    continue;
                };
                if !summary.chk_eq.contains(imm) && !summary.chk_ineq.contains(imm) {
                    continue;
                }
                let Some((error_succ, ok_succ)) = error_edge(&cfg, off, *imm, &error_codes) else {
                    continue;
                };
                let error_reachable = cfg.reachable_from(error_succ);
                let ok_reachable = cfg.reachable_from(ok_succ);
                for recovery_off in error_reachable.difference(&ok_reachable) {
                    map.offsets.insert(*recovery_off);
                    if let Some((file, line)) = module.line_for_offset(*recovery_off) {
                        map.lines.insert((file.to_string(), line));
                    }
                }
            }
        }
    }
    map
}

/// Convenience: recovery lines only.
pub fn recovery_lines(
    module: &Module,
    profile: &FaultProfile,
    functions: &[String],
) -> BTreeSet<(String, u32)> {
    recovery_offsets(module, profile, functions).lines
}

#[cfg(test)]
mod tests {
    use lfi_cc::Compiler;
    use lfi_obj::ModuleKind;

    use super::*;

    fn compile(src: &str) -> Module {
        Compiler::new("target", ModuleKind::SharedLib)
            .add_source("target.c", src)
            .compile()
            .unwrap()
    }

    fn libc_profile() -> FaultProfile {
        lfi_profiler::profile_library(&lfi_libc::build())
    }

    #[test]
    fn recovery_block_lines_are_identified() {
        let src = r#"
            int handle() {
                int fd = open("/etc/conf", O_RDONLY, 0);
                if (fd == -1) {
                    print("recovery: could not open config\n");
                    errno = 0;
                    return -1;
                }
                close(fd);
                return 0;
            }
        "#;
        let module = compile(src);
        let map = recovery_offsets(&module, &libc_profile(), &["open".to_string()]);
        assert!(!map.offsets.is_empty(), "recovery block must be found");
        let lines: Vec<u32> = map.lines.iter().map(|(_, l)| *l).collect();
        // The recovery body spans lines 5-7 of the source above.
        assert!(
            lines.iter().any(|l| (5..=7).contains(l)),
            "lines: {lines:?}"
        );
        // The success path (close on line 9) must not be classified as recovery.
        assert!(!lines.contains(&9), "lines: {lines:?}");
    }

    #[test]
    fn unchecked_calls_contribute_no_recovery_code() {
        let src = r#"
            int handle() {
                int fd = open("/etc/conf", O_RDONLY, 0);
                close(fd);
                return 0;
            }
        "#;
        let module = compile(src);
        let map = recovery_offsets(&module, &libc_profile(), &["open".to_string()]);
        assert!(map.offsets.is_empty());
        assert_eq!(map.line_count(), 0);
    }

    #[test]
    fn inequality_guards_identify_the_error_side() {
        let src = r#"
            int pump() {
                int n = read(3, 1000, 64);
                if (n < 0) {
                    print("read failed\n");
                    return -1;
                }
                return n;
            }
        "#;
        let module = compile(src);
        let map = recovery_offsets(&module, &libc_profile(), &["read".to_string()]);
        assert!(!map.offsets.is_empty());
        let lines: Vec<u32> = map.lines.iter().map(|(_, l)| *l).collect();
        assert!(
            lines.iter().any(|l| (5..=6).contains(l)),
            "lines: {lines:?}"
        );
    }
}
