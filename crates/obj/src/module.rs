//! The [`Module`] container and its invariants.

use std::collections::HashMap;
use std::fmt;

use lfi_arch::{decode_all, Insn, INSN_SIZE};
use serde::{Deserialize, Serialize};

use crate::symbol::{DataReloc, Export, SymKind, SymRef};

/// Whether a module is a program entry point or a shared library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModuleKind {
    /// An executable; must export `main`.
    Executable,
    /// A shared library; interposable via the preload mechanism.
    SharedLib,
}

/// A DWARF-like line-table entry: instructions at or after `code_offset`
/// (until the next entry) originate from `files[file] : line`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineEntry {
    /// Byte offset into the code section.
    pub code_offset: u64,
    /// Index into [`Module::files`].
    pub file: u32,
    /// 1-based source line number.
    pub line: u32,
}

/// A loadable unit: executable or shared library.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module name (`libc`, `bind-lite`, ...). Used in backtraces, triggers
    /// and injection scenarios, like the object-file name in the paper.
    pub name: String,
    /// Executable or shared library.
    pub kind: ModuleKind,
    /// Names of libraries this module needs at load time (like `DT_NEEDED`).
    pub needed: Vec<String>,
    /// Encoded instructions; length is a multiple of [`INSN_SIZE`].
    pub code: Vec<u8>,
    /// Initialized data.
    pub data: Vec<u8>,
    /// Size of the zero-initialized region following the data section.
    pub bss_size: u64,
    /// Symbol references used by `callsym`/`leasym`/`tls*` instructions.
    pub symrefs: Vec<SymRef>,
    /// Exported definitions.
    pub exports: Vec<Export>,
    /// Data-section relocations.
    pub data_relocs: Vec<DataReloc>,
    /// Source files referenced by the line table.
    pub files: Vec<String>,
    /// Line table, sorted by `code_offset`.
    pub line_table: Vec<LineEntry>,
}

/// Problems detected by [`Module::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// Code section length is not a multiple of the instruction size.
    MisalignedCode { len: usize },
    /// An instruction failed to decode.
    BadInstruction { offset: u64, message: String },
    /// An instruction references a symbol index outside the symref table.
    SymRefOutOfRange { offset: u64, sym: u32 },
    /// An export points outside the section it claims to live in.
    ExportOutOfRange { name: String },
    /// A function export is not aligned to an instruction boundary.
    ExportMisaligned { name: String },
    /// A data relocation's patch site is out of range or misaligned.
    BadDataReloc { data_offset: u64 },
    /// A line-table entry references a file index outside `files`.
    LineFileOutOfRange { entry: usize },
    /// Two exports share the same name and namespace.
    DuplicateExport { name: String },
    /// An executable does not export `main`.
    MissingMain,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::MisalignedCode { len } => {
                write!(
                    f,
                    "code section length {len} is not a multiple of {INSN_SIZE}"
                )
            }
            ValidateError::BadInstruction { offset, message } => {
                write!(f, "undecodable instruction at {offset:#x}: {message}")
            }
            ValidateError::SymRefOutOfRange { offset, sym } => {
                write!(
                    f,
                    "instruction at {offset:#x} references missing symbol #{sym}"
                )
            }
            ValidateError::ExportOutOfRange { name } => {
                write!(f, "export `{name}` points outside its section")
            }
            ValidateError::ExportMisaligned { name } => {
                write!(f, "function export `{name}` is not instruction-aligned")
            }
            ValidateError::BadDataReloc { data_offset } => {
                write!(
                    f,
                    "data relocation at {data_offset:#x} is out of range or misaligned"
                )
            }
            ValidateError::LineFileOutOfRange { entry } => {
                write!(f, "line-table entry {entry} references a missing file")
            }
            ValidateError::DuplicateExport { name } => {
                write!(f, "duplicate export `{name}`")
            }
            ValidateError::MissingMain => write!(f, "executable does not export `main`"),
        }
    }
}

impl std::error::Error for ValidateError {}

impl Module {
    /// Create an empty module of the given kind.
    pub fn new(name: impl Into<String>, kind: ModuleKind) -> Module {
        Module {
            name: name.into(),
            kind,
            needed: Vec::new(),
            code: Vec::new(),
            data: Vec::new(),
            bss_size: 0,
            symrefs: Vec::new(),
            exports: Vec::new(),
            data_relocs: Vec::new(),
            files: Vec::new(),
            line_table: Vec::new(),
        }
    }

    /// Decode the whole code section. Panics only if the module is invalid;
    /// callers that work with untrusted modules should [`Module::validate`]
    /// first.
    pub fn decode_code(&self) -> Vec<(u64, Insn)> {
        let (insns, err) = decode_all(&self.code);
        debug_assert!(err.is_none(), "decode_code on an invalid module");
        insns
    }

    /// Decode the single instruction at `offset`, if any.
    pub fn insn_at(&self, offset: u64) -> Option<Insn> {
        if !offset.is_multiple_of(INSN_SIZE) {
            return None;
        }
        let start = offset as usize;
        if start + INSN_SIZE as usize > self.code.len() {
            return None;
        }
        Insn::decode(&self.code[start..]).ok()
    }

    /// Number of instructions in the code section.
    pub fn insn_count(&self) -> usize {
        self.code.len() / INSN_SIZE as usize
    }

    /// Look up an export by name and kind.
    pub fn export(&self, name: &str, kind: SymKind) -> Option<&Export> {
        self.exports
            .iter()
            .find(|e| e.kind == kind && e.name == name)
    }

    /// Look up a function export by name.
    pub fn func_export(&self, name: &str) -> Option<&Export> {
        self.export(name, SymKind::Func)
    }

    /// All code offsets whose instruction is a `callsym` referencing the given
    /// function name. This is the call-site discovery primitive used by the
    /// analyzer (the analogue of scanning PLT relocations in an ELF binary).
    pub fn call_sites_of(&self, func_name: &str) -> Vec<u64> {
        self.decode_code()
            .into_iter()
            .filter_map(|(off, insn)| match insn {
                Insn::CallSym { sym } => {
                    let symref = self.symrefs.get(sym as usize)?;
                    if symref.kind == SymKind::Func && symref.name == func_name {
                        Some(off)
                    } else {
                        None
                    }
                }
                _ => None,
            })
            .collect()
    }

    /// All distinct function names referenced by `callsym` instructions that
    /// are *not* defined by this module (i.e. true imports).
    pub fn imported_functions(&self) -> Vec<String> {
        let defined: HashMap<&str, ()> = self
            .exports
            .iter()
            .filter(|e| e.kind == SymKind::Func)
            .map(|e| (e.name.as_str(), ()))
            .collect();
        let mut names: Vec<String> = self
            .symrefs
            .iter()
            .filter(|s| s.kind == SymKind::Func && !defined.contains_key(s.name.as_str()))
            .map(|s| s.name.clone())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// The function export whose code range contains `offset`, determined by
    /// taking the export with the greatest offset that is `<= offset`.
    pub fn containing_function(&self, offset: u64) -> Option<&Export> {
        self.exports
            .iter()
            .filter(|e| e.kind == SymKind::Func && e.offset <= offset)
            .max_by_key(|e| e.offset)
    }

    /// Source file and line for a code offset, using the line table.
    pub fn line_for_offset(&self, offset: u64) -> Option<(&str, u32)> {
        if self.line_table.is_empty() {
            return None;
        }
        let idx = match self
            .line_table
            .binary_search_by_key(&offset, |e| e.code_offset)
        {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let entry = &self.line_table[idx];
        let file = self.files.get(entry.file as usize)?;
        Some((file.as_str(), entry.line))
    }

    /// Code offsets attributed to a given `file:line`, per the line table.
    pub fn offsets_for_line(&self, file: &str, line: u32) -> Vec<u64> {
        let Some(file_idx) = self.files.iter().position(|f| f == file) else {
            return Vec::new();
        };
        self.line_table
            .iter()
            .filter(|e| e.file as usize == file_idx && e.line == line)
            .map(|e| e.code_offset)
            .collect()
    }

    /// Check every structural invariant of the module.
    pub fn validate(&self) -> Result<(), Vec<ValidateError>> {
        let mut errors = Vec::new();
        if !self.code.len().is_multiple_of(INSN_SIZE as usize) {
            errors.push(ValidateError::MisalignedCode {
                len: self.code.len(),
            });
        }
        let (insns, decode_err) = decode_all(&self.code);
        if let Some((offset, err)) = decode_err {
            errors.push(ValidateError::BadInstruction {
                offset,
                message: err.to_string(),
            });
        }
        for (off, insn) in &insns {
            let sym = match insn {
                Insn::CallSym { sym }
                | Insn::LeaSym { sym, .. }
                | Insn::TlsLoad { sym, .. }
                | Insn::TlsStore { sym, .. } => Some(*sym),
                _ => None,
            };
            if let Some(sym) = sym {
                if sym as usize >= self.symrefs.len() {
                    errors.push(ValidateError::SymRefOutOfRange { offset: *off, sym });
                }
            }
        }
        let mut seen = HashMap::new();
        for export in &self.exports {
            if seen
                .insert((export.name.clone(), export.kind), ())
                .is_some()
            {
                errors.push(ValidateError::DuplicateExport {
                    name: export.name.clone(),
                });
            }
            match export.kind {
                SymKind::Func => {
                    if export.offset as usize >= self.code.len().max(1) {
                        errors.push(ValidateError::ExportOutOfRange {
                            name: export.name.clone(),
                        });
                    } else if export.offset % INSN_SIZE != 0 {
                        errors.push(ValidateError::ExportMisaligned {
                            name: export.name.clone(),
                        });
                    }
                }
                SymKind::Data => {
                    let limit = self.data.len() as u64 + self.bss_size;
                    if export.offset >= limit.max(1) {
                        errors.push(ValidateError::ExportOutOfRange {
                            name: export.name.clone(),
                        });
                    }
                }
                SymKind::Tls => {}
            }
        }
        for reloc in &self.data_relocs {
            let end = reloc.data_offset.checked_add(8);
            let ok = end.is_some_and(|e| e as usize <= self.data.len());
            if !ok {
                errors.push(ValidateError::BadDataReloc {
                    data_offset: reloc.data_offset,
                });
            }
        }
        for (i, entry) in self.line_table.iter().enumerate() {
            if entry.file as usize >= self.files.len() {
                errors.push(ValidateError::LineFileOutOfRange { entry: i });
            }
        }
        if self.kind == ModuleKind::Executable && self.func_export("main").is_none() {
            errors.push(ValidateError::MissingMain);
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// Render a human-readable disassembly listing of the code section,
    /// annotated with function labels and source lines where available.
    pub fn disassembly(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let func_at: HashMap<u64, &str> = self
            .exports
            .iter()
            .filter(|e| e.kind == SymKind::Func)
            .map(|e| (e.offset, e.name.as_str()))
            .collect();
        let mut last_line: Option<(&str, u32)> = None;
        for (off, insn) in self.decode_code() {
            if let Some(name) = func_at.get(&off) {
                let _ = writeln!(out, "\n{name}:");
            }
            let loc = self.line_for_offset(off);
            if loc != last_line {
                if let Some((file, line)) = loc {
                    let _ = writeln!(out, "  ; {file}:{line}");
                }
                last_line = loc;
            }
            let annotated = match insn {
                Insn::CallSym { sym } | Insn::LeaSym { sym, .. } => {
                    let name = self
                        .symrefs
                        .get(sym as usize)
                        .map(|s| s.name.as_str())
                        .unwrap_or("?");
                    format!("{insn}  ; -> {name}")
                }
                _ => insn.to_string(),
            };
            let _ = writeln!(out, "  {off:#06x}: {annotated}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use lfi_arch::Reg;

    use super::*;

    fn push_insn(module: &mut Module, insn: Insn) -> u64 {
        let off = module.code.len() as u64;
        module.code.extend_from_slice(&insn.encode());
        off
    }

    fn tiny_module() -> Module {
        let mut m = Module::new("demo", ModuleKind::Executable);
        m.symrefs.push(SymRef::func("read"));
        m.symrefs.push(SymRef::tls("errno"));
        m.files.push("demo.c".to_string());
        let main_off = push_insn(
            &mut m,
            Insn::MovI {
                dst: Reg::R(1),
                imm: 3,
            },
        );
        m.line_table.push(LineEntry {
            code_offset: main_off,
            file: 0,
            line: 1,
        });
        push_insn(&mut m, Insn::CallSym { sym: 0 });
        push_insn(
            &mut m,
            Insn::CmpI {
                a: Reg::R(0),
                imm: -1,
            },
        );
        m.line_table.push(LineEntry {
            code_offset: 2 * INSN_SIZE,
            file: 0,
            line: 2,
        });
        push_insn(&mut m, Insn::Ret);
        m.exports.push(Export {
            name: "main".into(),
            kind: SymKind::Func,
            offset: main_off,
            size: m.code.len() as u64,
        });
        m
    }

    #[test]
    fn validate_accepts_well_formed_module() {
        assert_eq!(tiny_module().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_missing_main() {
        let mut m = tiny_module();
        m.exports.clear();
        let errs = m.validate().unwrap_err();
        assert!(errs.contains(&ValidateError::MissingMain));
    }

    #[test]
    fn validate_rejects_symref_out_of_range() {
        let mut m = tiny_module();
        push_insn(&mut m, Insn::CallSym { sym: 99 });
        let errs = m.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::SymRefOutOfRange { sym: 99, .. })));
    }

    #[test]
    fn validate_rejects_misaligned_code() {
        let mut m = tiny_module();
        m.code.push(0);
        let errs = m.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::MisalignedCode { .. })));
    }

    #[test]
    fn validate_rejects_bad_data_reloc() {
        let mut m = tiny_module();
        m.data = vec![0; 4];
        m.data_relocs.push(DataReloc {
            data_offset: 2,
            sym: 0,
        });
        let errs = m.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidateError::BadDataReloc { data_offset: 2 })));
    }

    #[test]
    fn call_sites_and_imports() {
        let m = tiny_module();
        assert_eq!(m.call_sites_of("read"), vec![INSN_SIZE]);
        assert_eq!(m.call_sites_of("write"), Vec::<u64>::new());
        assert_eq!(m.imported_functions(), vec!["read".to_string()]);
    }

    #[test]
    fn line_lookup_uses_preceding_entry() {
        let m = tiny_module();
        assert_eq!(m.line_for_offset(0), Some(("demo.c", 1)));
        assert_eq!(m.line_for_offset(INSN_SIZE), Some(("demo.c", 1)));
        assert_eq!(m.line_for_offset(2 * INSN_SIZE), Some(("demo.c", 2)));
        assert_eq!(m.line_for_offset(3 * INSN_SIZE), Some(("demo.c", 2)));
        assert_eq!(m.offsets_for_line("demo.c", 2), vec![2 * INSN_SIZE]);
        assert!(m.offsets_for_line("other.c", 2).is_empty());
    }

    #[test]
    fn containing_function_lookup() {
        let m = tiny_module();
        assert_eq!(m.containing_function(2 * INSN_SIZE).unwrap().name, "main");
        let mut m2 = m.clone();
        m2.exports.push(Export {
            name: "helper".into(),
            kind: SymKind::Func,
            offset: 2 * INSN_SIZE,
            size: 0,
        });
        assert_eq!(m2.containing_function(INSN_SIZE).unwrap().name, "main");
        assert_eq!(
            m2.containing_function(3 * INSN_SIZE).unwrap().name,
            "helper"
        );
    }

    #[test]
    fn disassembly_mentions_symbols_and_lines() {
        let text = tiny_module().disassembly();
        assert!(text.contains("main:"));
        assert!(text.contains("-> read"));
        assert!(text.contains("demo.c:1"));
    }
}
