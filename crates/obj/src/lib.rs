//! Object and shared-library format for the LFI reproduction.
//!
//! A [`Module`] is the substrate's analogue of an ELF object: it carries a
//! code section of fixed-width instructions, an initialized data section, a
//! BSS size, a symbol-reference table used by `callsym`/`leasym`/`tls*`
//! instructions, an export table, data relocations, and a DWARF-like line
//! table mapping code offsets back to source file/line. Everything the LFI
//! tool chain needs — call-site discovery through symbol references, library
//! profiling of exported functions, file/line triggers, coverage accounting —
//! is expressed in terms of this format.

pub mod binfmt;
pub mod module;
pub mod symbol;

pub use binfmt::{FormatError, MAGIC};
pub use module::{LineEntry, Module, ModuleKind, ValidateError};
pub use symbol::{DataReloc, Export, SymKind, SymRef};
