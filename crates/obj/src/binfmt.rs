//! Binary (on-disk) serialization of [`Module`].
//!
//! The format is a straightforward length-prefixed layout with a magic number
//! and a version field, so target binaries and shared libraries can be written
//! to disk, shipped, and analyzed without the producing tool chain.

use std::fmt;

use bytes::{Buf, BufMut};

use crate::module::{LineEntry, Module, ModuleKind};
use crate::symbol::{DataReloc, Export, SymKind, SymRef};

/// Magic bytes at the start of every serialized module.
pub const MAGIC: [u8; 4] = *b"LFIM";

/// Current format version.
pub const VERSION: u32 = 1;

/// Errors produced while decoding a serialized module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The format version is not supported by this build.
    UnsupportedVersion(u32),
    /// The buffer ended before the structure was complete.
    Truncated,
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// An enum discriminant byte was invalid.
    BadEnum(&'static str, u8),
    /// A length field was implausibly large for the remaining buffer.
    LengthOutOfRange(u64),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::BadMagic => write!(f, "not an LFI module (bad magic)"),
            FormatError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            FormatError::Truncated => write!(f, "truncated module"),
            FormatError::InvalidUtf8 => write!(f, "invalid UTF-8 in string field"),
            FormatError::BadEnum(what, b) => write!(f, "invalid {what} discriminant {b}"),
            FormatError::LengthOutOfRange(n) => write!(f, "length field {n} exceeds buffer"),
        }
    }
}

impl std::error::Error for FormatError {}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    buf.put_u64_le(b.len() as u64);
    buf.put_slice(b);
}

fn need(buf: &&[u8], n: usize) -> Result<(), FormatError> {
    if buf.remaining() < n {
        Err(FormatError::Truncated)
    } else {
        Ok(())
    }
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, FormatError> {
    need(buf, 1)?;
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, FormatError> {
    need(buf, 4)?;
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, FormatError> {
    need(buf, 8)?;
    Ok(buf.get_u64_le())
}

fn get_string(buf: &mut &[u8]) -> Result<String, FormatError> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(FormatError::LengthOutOfRange(len as u64));
    }
    let bytes = buf[..len].to_vec();
    buf.advance(len);
    String::from_utf8(bytes).map_err(|_| FormatError::InvalidUtf8)
}

fn get_bytes(buf: &mut &[u8]) -> Result<Vec<u8>, FormatError> {
    let len = get_u64(buf)? as usize;
    if buf.remaining() < len {
        return Err(FormatError::LengthOutOfRange(len as u64));
    }
    let bytes = buf[..len].to_vec();
    buf.advance(len);
    Ok(bytes)
}

impl Module {
    /// Serialize the module to its binary on-disk representation.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.code.len() + self.data.len());
        buf.put_slice(&MAGIC);
        buf.put_u32_le(VERSION);
        put_string(&mut buf, &self.name);
        buf.put_u8(match self.kind {
            ModuleKind::Executable => 0,
            ModuleKind::SharedLib => 1,
        });
        buf.put_u32_le(self.needed.len() as u32);
        for n in &self.needed {
            put_string(&mut buf, n);
        }
        put_bytes(&mut buf, &self.code);
        put_bytes(&mut buf, &self.data);
        buf.put_u64_le(self.bss_size);
        buf.put_u32_le(self.symrefs.len() as u32);
        for s in &self.symrefs {
            buf.put_u8(s.kind.encode());
            put_string(&mut buf, &s.name);
        }
        buf.put_u32_le(self.exports.len() as u32);
        for e in &self.exports {
            buf.put_u8(e.kind.encode());
            buf.put_u64_le(e.offset);
            buf.put_u64_le(e.size);
            put_string(&mut buf, &e.name);
        }
        buf.put_u32_le(self.data_relocs.len() as u32);
        for r in &self.data_relocs {
            buf.put_u64_le(r.data_offset);
            buf.put_u32_le(r.sym);
        }
        buf.put_u32_le(self.files.len() as u32);
        for f in &self.files {
            put_string(&mut buf, f);
        }
        buf.put_u32_le(self.line_table.len() as u32);
        for l in &self.line_table {
            buf.put_u64_le(l.code_offset);
            buf.put_u32_le(l.file);
            buf.put_u32_le(l.line);
        }
        buf
    }

    /// Decode a module from its binary representation.
    pub fn from_bytes(mut buf: &[u8]) -> Result<Module, FormatError> {
        let buf = &mut buf;
        need(buf, 4)?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if magic != MAGIC {
            return Err(FormatError::BadMagic);
        }
        let version = get_u32(buf)?;
        if version != VERSION {
            return Err(FormatError::UnsupportedVersion(version));
        }
        let name = get_string(buf)?;
        let kind = match get_u8(buf)? {
            0 => ModuleKind::Executable,
            1 => ModuleKind::SharedLib,
            other => return Err(FormatError::BadEnum("module kind", other)),
        };
        let needed_count = get_u32(buf)?;
        let mut needed = Vec::with_capacity(needed_count.min(1024) as usize);
        for _ in 0..needed_count {
            needed.push(get_string(buf)?);
        }
        let code = get_bytes(buf)?;
        let data = get_bytes(buf)?;
        let bss_size = get_u64(buf)?;
        let symref_count = get_u32(buf)?;
        let mut symrefs = Vec::with_capacity(symref_count.min(65536) as usize);
        for _ in 0..symref_count {
            let kind = get_u8(buf)?;
            let kind = SymKind::decode(kind).ok_or(FormatError::BadEnum("symbol kind", kind))?;
            let name = get_string(buf)?;
            symrefs.push(SymRef { name, kind });
        }
        let export_count = get_u32(buf)?;
        let mut exports = Vec::with_capacity(export_count.min(65536) as usize);
        for _ in 0..export_count {
            let kind = get_u8(buf)?;
            let kind = SymKind::decode(kind).ok_or(FormatError::BadEnum("symbol kind", kind))?;
            let offset = get_u64(buf)?;
            let size = get_u64(buf)?;
            let name = get_string(buf)?;
            exports.push(Export {
                name,
                kind,
                offset,
                size,
            });
        }
        let reloc_count = get_u32(buf)?;
        let mut data_relocs = Vec::with_capacity(reloc_count.min(65536) as usize);
        for _ in 0..reloc_count {
            let data_offset = get_u64(buf)?;
            let sym = get_u32(buf)?;
            data_relocs.push(DataReloc { data_offset, sym });
        }
        let file_count = get_u32(buf)?;
        let mut files = Vec::with_capacity(file_count.min(65536) as usize);
        for _ in 0..file_count {
            files.push(get_string(buf)?);
        }
        let line_count = get_u32(buf)?;
        let mut line_table = Vec::with_capacity(line_count.min(1 << 20) as usize);
        for _ in 0..line_count {
            let code_offset = get_u64(buf)?;
            let file = get_u32(buf)?;
            let line = get_u32(buf)?;
            line_table.push(LineEntry {
                code_offset,
                file,
                line,
            });
        }
        Ok(Module {
            name,
            kind,
            needed,
            code,
            data,
            bss_size,
            symrefs,
            exports,
            data_relocs,
            files,
            line_table,
        })
    }
}

#[cfg(test)]
mod tests {
    use lfi_arch::{Insn, Reg};

    use super::*;

    fn sample_module() -> Module {
        let mut m = Module::new("libdemo", ModuleKind::SharedLib);
        m.needed.push("libc".into());
        m.symrefs.push(SymRef::func("read"));
        m.symrefs.push(SymRef::tls("errno"));
        m.symrefs.push(SymRef::data("table"));
        for insn in [
            Insn::MovI {
                dst: Reg::R(0),
                imm: -1,
            },
            Insn::TlsStore {
                sym: 1,
                src: Reg::R(0),
            },
            Insn::Ret,
        ] {
            m.code.extend_from_slice(&insn.encode());
        }
        m.data = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16];
        m.bss_size = 128;
        m.exports.push(Export {
            name: "fail_read".into(),
            kind: SymKind::Func,
            offset: 0,
            size: 36,
        });
        m.exports.push(Export {
            name: "table".into(),
            kind: SymKind::Data,
            offset: 0,
            size: 16,
        });
        m.data_relocs.push(DataReloc {
            data_offset: 8,
            sym: 2,
        });
        m.files.push("libdemo.c".into());
        m.line_table.push(LineEntry {
            code_offset: 0,
            file: 0,
            line: 10,
        });
        m
    }

    #[test]
    fn roundtrip() {
        let module = sample_module();
        let bytes = module.to_bytes();
        let back = Module::from_bytes(&bytes).expect("decode");
        assert_eq!(back, module);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample_module().to_bytes();
        bytes[0] = b'X';
        assert_eq!(Module::from_bytes(&bytes), Err(FormatError::BadMagic));
    }

    #[test]
    fn rejects_unsupported_version() {
        let mut bytes = sample_module().to_bytes();
        bytes[4] = 0xFF;
        assert!(matches!(
            Module::from_bytes(&bytes),
            Err(FormatError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = sample_module().to_bytes();
        // Chop the serialized form at several points; decoding must error out,
        // never panic and never succeed with partial data.
        for cut in [3, 7, 9, 20, bytes.len() / 2, bytes.len() - 1] {
            let result = Module::from_bytes(&bytes[..cut]);
            assert!(result.is_err(), "cut at {cut} unexpectedly decoded");
        }
    }

    #[test]
    fn empty_module_roundtrips() {
        let m = Module::new("empty", ModuleKind::Executable);
        assert_eq!(Module::from_bytes(&m.to_bytes()), Ok(m));
    }
}
