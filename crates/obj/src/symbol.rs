//! Symbol references, exports, and data relocations.

use serde::{Deserialize, Serialize};

/// The namespace a symbol lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SymKind {
    /// A function entry point in some module's code section.
    Func,
    /// A data object in some module's data or BSS section.
    Data,
    /// A thread-local variable (e.g. `errno`).
    Tls,
}

impl SymKind {
    /// Stable one-byte encoding used by the binary format.
    pub fn encode(self) -> u8 {
        match self {
            SymKind::Func => 0,
            SymKind::Data => 1,
            SymKind::Tls => 2,
        }
    }

    /// Decode from the one-byte encoding.
    pub fn decode(byte: u8) -> Option<SymKind> {
        match byte {
            0 => Some(SymKind::Func),
            1 => Some(SymKind::Data),
            2 => Some(SymKind::Tls),
            _ => None,
        }
    }
}

/// A symbol reference used by `callsym`, `leasym`, `tlsld` and `tlsst`
/// instructions. The instruction stores an index into the module's
/// symbol-reference table; resolution to an address happens at load time.
///
/// References to functions not defined in the module play the role of PLT
/// entries in ELF: they are exactly the points the LFI call-site analyzer
/// scans for, and the points the interposition runtime can redirect.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SymRef {
    /// Symbol name (`read`, `malloc`, string-literal labels, ...).
    pub name: String,
    /// Which namespace the symbol lives in.
    pub kind: SymKind,
}

impl SymRef {
    /// Convenience constructor for a function reference.
    pub fn func(name: impl Into<String>) -> SymRef {
        SymRef {
            name: name.into(),
            kind: SymKind::Func,
        }
    }

    /// Convenience constructor for a data reference.
    pub fn data(name: impl Into<String>) -> SymRef {
        SymRef {
            name: name.into(),
            kind: SymKind::Data,
        }
    }

    /// Convenience constructor for a TLS reference.
    pub fn tls(name: impl Into<String>) -> SymRef {
        SymRef {
            name: name.into(),
            kind: SymKind::Tls,
        }
    }
}

/// An exported symbol definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Export {
    /// Symbol name visible to other modules.
    pub name: String,
    /// Namespace of the definition.
    pub kind: SymKind,
    /// Offset of the definition: into the code section for [`SymKind::Func`],
    /// into data (or past it, for BSS) for [`SymKind::Data`]. Unused for TLS.
    pub offset: u64,
    /// Size in bytes (functions: code length if known; data: object size).
    pub size: u64,
}

/// A relocation applied to the data section at load time: the 8-byte word at
/// `data_offset` is replaced with the absolute address of `sym` (an index
/// into the module's symbol-reference table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataReloc {
    /// Offset into the data section of the word to patch.
    pub data_offset: u64,
    /// Index into the symbol-reference table.
    pub sym: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symkind_roundtrip() {
        for kind in [SymKind::Func, SymKind::Data, SymKind::Tls] {
            assert_eq!(SymKind::decode(kind.encode()), Some(kind));
        }
        assert_eq!(SymKind::decode(9), None);
    }

    #[test]
    fn symref_constructors() {
        assert_eq!(SymRef::func("read").kind, SymKind::Func);
        assert_eq!(SymRef::data("table").kind, SymKind::Data);
        assert_eq!(SymRef::tls("errno").kind, SymKind::Tls);
        assert_eq!(SymRef::func("read").name, "read");
    }
}
