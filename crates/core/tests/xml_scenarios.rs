//! Unit tests for the XML layer backing the scenario language:
//! `parse_xml`, `parse_xml_fragments`, and the `to_xml` round trip.

use lfi_core::{parse_xml, parse_xml_fragments, XmlNode};

#[test]
fn well_formed_scenario_documents_parse_fully() {
    let doc = r#"
        <?xml version="1.0"?>
        <!-- the paper's running example -->
        <scenario>
            <trigger id="readTrig" class="CallCountTrigger">
                <args>
                    <count>3</count>
                </args>
            </trigger>
            <function name="read" argc="3" return="-1" errno="EINTR">
                <reftrigger ref="readTrig" />
            </function>
        </scenario>
    "#;
    let root = parse_xml(doc).unwrap();
    assert_eq!(root.name, "scenario");
    assert_eq!(root.children.len(), 2);
    let trigger = root.child("trigger").unwrap();
    assert_eq!(trigger.attr("id"), Some("readTrig"));
    assert_eq!(
        trigger.child("args").unwrap().child_text("count"),
        Some("3")
    );
    let function = root.child("function").unwrap();
    assert_eq!(function.attr("errno"), Some("EINTR"));
    assert_eq!(function.children_named("reftrigger").count(), 1);
}

#[test]
fn text_and_children_can_mix_inside_an_element() {
    let node = parse_xml("<p>before <b>bold</b> after</p>").unwrap();
    assert_eq!(node.text, "before after");
    assert_eq!(node.child("b").unwrap().text, "bold");
}

#[test]
fn single_and_double_quoted_attributes_are_equivalent() {
    let a = parse_xml(r#"<t k="v" />"#).unwrap();
    let b = parse_xml("<t k='v' />").unwrap();
    assert_eq!(a.attr("k"), b.attr("k"));
}

#[test]
fn malformed_documents_report_errors_not_panics() {
    // Each input exercises a distinct parser error path.
    let cases = [
        ("", "empty input"),
        ("plain text", "no element"),
        ("<", "name after `<`"),
        ("<a", "unterminated element"),
        ("<a b></a>", "attribute without value"),
        ("<a b=c></a>", "unquoted attribute"),
        ("<a b=\"c></a>", "unterminated attribute value"),
        ("<a><b></c></a>", "mismatched closing tag"),
        ("<a><b></a>", "closing the wrong element"),
        ("<a><!-- no end", "unterminated comment inside content"),
        ("<a>text", "missing closing tag"),
    ];
    for (doc, what) in cases {
        assert!(parse_xml(doc).is_err(), "{what}: {doc:?} must be rejected");
    }
}

#[test]
fn error_positions_point_into_the_input() {
    let err = parse_xml("<a foo=bar></a>").unwrap_err();
    assert!(err.position > 0 && err.position < 16);
    assert!(err.to_string().contains("quoted"));
}

#[test]
fn fragments_are_wrapped_in_a_synthetic_scenario_root() {
    let doc = r#"
        <trigger id="a" class="SingletonTrigger" />
        <trigger id="b" class="RandomTrigger"><args><probability>0.5</probability></args></trigger>
        <function name="close" return="-1" errno="EIO"><reftrigger ref="a" /></function>
    "#;
    let root = parse_xml_fragments(doc).unwrap();
    assert_eq!(root.name, "scenario");
    assert_eq!(root.children.len(), 3);
    assert_eq!(root.children[0].attr("id"), Some("a"));
    assert_eq!(root.children[2].name, "function");
}

#[test]
fn an_explicit_scenario_root_is_not_double_wrapped() {
    let root = parse_xml_fragments("<scenario><trigger id='x' class='C' /></scenario>").unwrap();
    assert_eq!(root.name, "scenario");
    assert_eq!(root.children.len(), 1);
    assert_eq!(root.children[0].name, "trigger");
}

#[test]
fn fragment_round_trip_preserves_structure() {
    let doc = r#"
        <trigger id="t1" class="CallStackTrigger">
            <args>
                <frame>
                    <module>bind-lite</module>
                    <offset>54a69</offset>
                </frame>
            </args>
        </trigger>
        <function name="open" argc="3" return="-1" errno="ENOENT">
            <reftrigger ref="t1" />
        </function>
    "#;
    let root = parse_xml_fragments(doc).unwrap();
    let rendered = root.to_xml();
    let back = parse_xml(&rendered).unwrap();
    assert_eq!(back, root);
}

#[test]
fn escaped_entities_survive_a_round_trip() {
    let original = XmlNode {
        name: "v".into(),
        attrs: vec![("expr".into(), "a < b && c > \"d\"".into())],
        text: "x & y < z".into(),
        children: vec![],
    };
    let rendered = original.to_xml();
    let back = parse_xml(&rendered).unwrap();
    assert_eq!(back, original);
}

#[test]
fn comments_and_declarations_are_skipped_between_fragments() {
    let doc = r#"
        <?xml version="1.0"?>
        <!-- first -->
        <a />
        <!-- second -->
        <b />
    "#;
    let root = parse_xml_fragments(doc).unwrap();
    assert_eq!(root.children.len(), 2);
    assert_eq!(root.children[0].name, "a");
    assert_eq!(root.children[1].name, "b");
}

#[test]
fn fragments_with_malformed_tail_are_rejected() {
    assert!(parse_xml_fragments("<a /> <b").is_err());
    assert!(parse_xml_fragments("<a /> junk").is_err());
}
