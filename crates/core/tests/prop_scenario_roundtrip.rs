//! Property test: any well-formed scenario survives a `to_xml` /
//! `parse_xml` round trip — including triggers referenced by zero, one, or
//! many function associations, observational (`return="unused"`)
//! associations, frame specifications, and named or numeric errno values.

use std::collections::BTreeMap;

use lfi_core::{FrameSpec, FunctionAssoc, Scenario, TriggerDecl};
use proptest::prelude::*;

/// One generated association body: (function, argc, retval, errno,
/// trigger-reference bitmask).
type AssocBody = (String, usize, Option<i64>, Option<i64>, u8);

fn arb_frame() -> impl Strategy<Value = FrameSpec> {
    (
        proptest::option::of("[a-z][a-z0-9_]{0,6}"),
        proptest::option::of(0u64..1 << 32),
        proptest::option::of("[a-z][a-z0-9_]{0,6}"),
        proptest::option::of("[a-z][a-z0-9_]{0,6}"),
        proptest::option::of(any::<u32>()),
    )
        .prop_map(|(module, offset, function, file, line)| FrameSpec {
            module,
            offset,
            function,
            file,
            line,
        })
}

/// Trigger parameters: keys are prefixed so they can never collide with the
/// reserved `<frame>` element of the `<args>` block.
fn arb_params() -> impl Strategy<Value = BTreeMap<String, String>> {
    proptest::collection::vec(("p[a-z0-9]{0,5}", "[a-z0-9][a-z0-9_]{0,8}"), 0..3)
        .prop_map(|pairs| pairs.into_iter().collect())
}

/// Trigger declarations without ids; the scenario builder assigns unique
/// ids positionally so generated scenarios always validate.
fn arb_trigger_body() -> impl Strategy<Value = (String, BTreeMap<String, String>, Vec<FrameSpec>)> {
    (
        "[A-Z][a-zA-Z]{0,10}",
        arb_params(),
        proptest::collection::vec(arb_frame(), 0..3),
    )
}

/// A function association referencing a subset of the declared triggers,
/// encoded as a bitmask over their indices. `retval == None` produces the
/// observational `return="unused"` form; errno draws from named constants
/// and plain numbers.
fn arb_assoc_body() -> impl Strategy<Value = AssocBody> {
    (
        "[a-z][a-z0-9_]{0,10}",
        0usize..6,
        proptest::option::of(-4096i64..4096),
        proptest::option::of(prop_oneof![
            Just(lfi_arch::errno::EIO),
            Just(lfi_arch::errno::ENOMEM),
            Just(lfi_arch::errno::EINVAL),
            0i64..200,
        ]),
        any::<u8>(),
    )
}

fn build_scenario(
    triggers: Vec<(String, BTreeMap<String, String>, Vec<FrameSpec>)>,
    assocs: Vec<AssocBody>,
) -> Scenario {
    let mut scenario = Scenario::new();
    for (index, (class, params, frames)) in triggers.into_iter().enumerate() {
        scenario.triggers.push(TriggerDecl {
            id: format!("t{index}"),
            class,
            params,
            frames,
        });
    }
    let declared = scenario.triggers.len();
    for (function, argc, retval, errno, mask) in assocs {
        let triggers = (0..declared)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| format!("t{i}"))
            .collect();
        scenario.functions.push(FunctionAssoc {
            function,
            argc,
            retval,
            errno,
            triggers,
        });
    }
    scenario
}

proptest! {
    #[test]
    fn scenario_xml_roundtrip(
        triggers in proptest::collection::vec(arb_trigger_body(), 0..4),
        assocs in proptest::collection::vec(arb_assoc_body(), 0..5),
    ) {
        let scenario = build_scenario(triggers, assocs);
        prop_assert!(scenario.validate().is_ok());
        let xml = scenario.to_xml();
        let back = Scenario::parse_xml(&xml).expect("generated XML must parse");
        prop_assert_eq!(back, scenario);
    }

    /// The degenerate shapes the issue calls out explicitly: a trigger with
    /// no referencing function at all, and one shared by many functions.
    #[test]
    fn empty_and_multi_function_associations_roundtrip(
        class in "[A-Z][a-zA-Z]{0,10}",
        functions in proptest::collection::vec("[a-z][a-z0-9_]{0,8}", 2..6),
    ) {
        // Unreferenced trigger only.
        let lonely = Scenario::new().with_trigger(TriggerDecl {
            id: "lonely".into(),
            class: class.clone(),
            params: BTreeMap::new(),
            frames: vec![],
        });
        prop_assert_eq!(Scenario::parse_xml(&lonely.to_xml()).unwrap(), lonely);

        // One trigger fanned out across many functions.
        let mut shared = Scenario::new().with_trigger(TriggerDecl {
            id: "shared".into(),
            class,
            params: BTreeMap::new(),
            frames: vec![],
        });
        for function in functions {
            shared.functions.push(FunctionAssoc {
                function,
                argc: 1,
                retval: Some(-1),
                errno: Some(lfi_arch::errno::EIO),
                triggers: vec!["shared".into()],
            });
        }
        prop_assert_eq!(Scenario::parse_xml(&shared.to_xml()).unwrap(), shared);
    }
}
