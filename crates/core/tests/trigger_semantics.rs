//! Trigger-firing semantics validated against a scripted run: a small
//! program with known `read` call sites runs under the `InjectionEngine`,
//! and the structured injection log is checked record by record.

use std::collections::BTreeMap;

use lfi_cc::Compiler;
use lfi_core::{FrameSpec, FunctionAssoc, InjectionEngine, Scenario, TriggerDecl};
use lfi_obj::{Module, ModuleKind};
use lfi_vm::{Loader, Machine, ProcessConfig, RunExit};

/// A stub library whose `read` always returns 10, so injected `-1` results
/// are visible in the program's arithmetic.
fn stub_lib() -> Module {
    Compiler::new("stublib", ModuleKind::SharedLib)
        .add_source(
            "stub.c",
            r#"
            int read(int fd, int buf, int count) {
                return 10;
            }
            "#,
        )
        .compile()
        .expect("stub library compiles")
}

/// Run `exe` under `scenario`, returning the exit and the engine's log.
fn run_scripted(exe: &Module, scenario: &Scenario) -> (RunExit, InjectionEngine) {
    let mut engine = InjectionEngine::new(scenario.clone()).expect("scenario compiles");
    let mut loader = Loader::new();
    loader.add_library(stub_lib());
    loader.interpose_all(engine.interposed_functions());
    let image = loader.load(exe.clone()).expect("load");
    let mut machine = Machine::new(image, ProcessConfig::default());
    let exit = machine.run_to_completion(&mut engine);
    (exit, engine)
}

fn call_count_scenario(count: u64) -> Scenario {
    Scenario::new()
        .with_trigger(TriggerDecl {
            id: "nth".into(),
            class: "CallCountTrigger".into(),
            params: BTreeMap::from([("count".to_string(), count.to_string())]),
            frames: vec![],
        })
        .with_function(FunctionAssoc {
            function: "read".into(),
            argc: 3,
            retval: Some(-1),
            errno: Some(lfi_arch::errno::EIO),
            triggers: vec!["nth".into()],
        })
}

#[test]
fn call_count_trigger_fires_exactly_on_the_nth_interception() {
    let exe = Compiler::new("app", ModuleKind::Executable)
        .needs("stublib")
        .add_source(
            "app.c",
            r#"
            int main() {
                int total = 0;
                int i = 0;
                while (i < 5) {
                    total = total + read(0, 0, 0);
                    i = i + 1;
                }
                return total;
            }
            "#,
        )
        .compile()
        .expect("app compiles");

    let (exit, engine) = run_scripted(&exe, &call_count_scenario(3));
    // Four honest reads (10 each) and one injected -1 on the third call.
    assert_eq!(exit, RunExit::Exited(4 * 10 - 1));
    assert_eq!(engine.log.interceptions, 5);
    assert_eq!(engine.log.injection_count(), 1);
    let record = &engine.log.records[0];
    assert_eq!(record.function, "read");
    assert_eq!(record.call_count, 3);
    assert_eq!(record.retval, -1);
    assert_eq!(record.errno, Some(lfi_arch::errno::EIO));
    assert_eq!(record.triggers, vec!["nth".to_string()]);
    assert_eq!(record.call_site.0, "app");
}

#[test]
fn call_count_trigger_past_the_last_call_never_fires() {
    let exe = Compiler::new("app", ModuleKind::Executable)
        .needs("stublib")
        .add_source(
            "app.c",
            "int main() { return read(0, 0, 0) + read(0, 0, 0); }",
        )
        .compile()
        .expect("app compiles");

    let (exit, engine) = run_scripted(&exe, &call_count_scenario(7));
    assert_eq!(exit, RunExit::Exited(20));
    assert_eq!(engine.log.interceptions, 2);
    assert_eq!(engine.log.injection_count(), 0);
    // Triggers were still evaluated on every interception.
    assert_eq!(engine.log.trigger_evaluations, 2);
}

/// Two distinct `read` call sites in two functions, so stack-frame triggers
/// can be pinned to one of them.
fn two_site_app() -> Module {
    Compiler::new("app", ModuleKind::Executable)
        .needs("stublib")
        .add_source(
            "app.c",
            r#"
            int from_a() { return read(0, 0, 0); }
            int from_b() { return read(0, 0, 0); }
            int main() {
                int x = 0;
                x = x + from_a();
                x = x + from_b();
                x = x + from_a();
                return x;
            }
            "#,
        )
        .compile()
        .expect("app compiles")
}

fn frame_scenario(frame: FrameSpec) -> Scenario {
    Scenario::new()
        .with_trigger(TriggerDecl {
            id: "site".into(),
            class: "CallStackTrigger".into(),
            params: BTreeMap::new(),
            frames: vec![frame],
        })
        .with_function(FunctionAssoc {
            function: "read".into(),
            argc: 3,
            retval: Some(-1),
            errno: None,
            triggers: vec!["site".into()],
        })
}

fn site_in(exe: &Module, function: &str) -> u64 {
    exe.call_sites_of("read")
        .into_iter()
        .find(|&off| {
            exe.containing_function(off)
                .map(|e| e.name == function)
                .unwrap_or(false)
        })
        .expect("call site exists")
}

#[test]
fn stack_frame_trigger_pinned_to_an_offset_fires_only_there() {
    let exe = two_site_app();
    let offset = site_in(&exe, "from_a");
    let scenario = frame_scenario(FrameSpec {
        module: Some("app".into()),
        offset: Some(offset),
        ..FrameSpec::default()
    });
    let (exit, engine) = run_scripted(&exe, &scenario);
    // Both from_a calls are failed; the from_b call is untouched.
    assert_eq!(exit, RunExit::Exited(-1 + 10 - 1));
    assert_eq!(engine.log.interceptions, 3);
    assert_eq!(engine.log.injection_count(), 2);
    for record in &engine.log.records {
        assert_eq!(record.call_site, ("app".to_string(), offset));
    }
    assert_eq!(engine.log.records[0].call_count, 1);
    assert_eq!(engine.log.records[1].call_count, 3);
}

#[test]
fn stack_frame_trigger_matching_a_function_name_scopes_injection() {
    let exe = two_site_app();
    let scenario = frame_scenario(FrameSpec {
        function: Some("from_b".into()),
        ..FrameSpec::default()
    });
    let (exit, engine) = run_scripted(&exe, &scenario);
    // Only the single from_b call fails.
    assert_eq!(exit, RunExit::Exited(10 - 1 + 10));
    assert_eq!(engine.log.injection_count(), 1);
    assert_eq!(engine.log.records[0].call_count, 2);
    let offset_b = site_in(&exe, "from_b");
    assert_eq!(engine.log.records[0].call_site.1, offset_b);
}

#[test]
fn non_matching_frames_disarm_the_scenario_entirely() {
    let exe = two_site_app();
    let scenario = frame_scenario(FrameSpec {
        module: Some("some-other-module".into()),
        ..FrameSpec::default()
    });
    let (exit, engine) = run_scripted(&exe, &scenario);
    assert_eq!(exit, RunExit::Exited(30));
    assert_eq!(engine.log.interceptions, 3);
    assert_eq!(engine.log.injection_count(), 0);
}

#[test]
fn conjunction_of_call_count_and_stack_frame_requires_both() {
    let exe = two_site_app();
    let offset = site_in(&exe, "from_a");
    // Fail read only when it is BOTH the 3rd interception AND at from_a's
    // call site — i.e. the second from_a call, not the from_b call.
    let scenario = Scenario::new()
        .with_trigger(TriggerDecl {
            id: "site".into(),
            class: "CallStackTrigger".into(),
            params: BTreeMap::new(),
            frames: vec![FrameSpec {
                module: Some("app".into()),
                offset: Some(offset),
                ..FrameSpec::default()
            }],
        })
        .with_trigger(TriggerDecl {
            id: "third".into(),
            class: "CallCountTrigger".into(),
            params: BTreeMap::from([("count".to_string(), "3".to_string())]),
            frames: vec![],
        })
        .with_function(FunctionAssoc {
            function: "read".into(),
            argc: 3,
            retval: Some(-1),
            errno: None,
            triggers: vec!["site".into(), "third".into()],
        });
    let (exit, engine) = run_scripted(&exe, &scenario);
    assert_eq!(exit, RunExit::Exited(10 + 10 - 1));
    assert_eq!(engine.log.injection_count(), 1);
    let record = &engine.log.records[0];
    assert_eq!(record.call_count, 3);
    assert_eq!(
        record.triggers,
        vec!["site".to_string(), "third".to_string()]
    );
}
