//! LFI core: high-precision library-level fault injection.
//!
//! This crate is the reproduction of the paper's primary contribution — the
//! extended LFI tool chain:
//!
//! * [`triggers`] — the pluggable [`Trigger`](triggers::Trigger) interface,
//!   the registry used to instantiate trigger classes by name, the six stock
//!   trigger families of §3.2 (call stack, program state, call count,
//!   singleton, random, distributed) and several argument-inspecting helpers.
//! * [`scenario`] — the XML fault-injection language of §4: trigger
//!   declarations, function associations (conjunction within an association,
//!   disjunction across associations), parametrization, and automatic
//!   scenario generation from call-site analysis reports.
//! * [`runtime`] — the injection engine that interposes on library calls,
//!   evaluates trigger compositions with short-circuiting and lazy
//!   initialization, injects error return values and errno side effects, and
//!   keeps a structured injection log.
//! * [`controller`] — test orchestration: library profiling, call-site
//!   analysis, scenario generation, workload execution, crash monitoring and
//!   reporting.
//! * [`xml`] — the small XML parser backing the scenario language.
//!
//! The substrate (ISA, object format, VM, compiler, simulated libc) lives in
//! the sibling crates; `lfi-core` only depends on their public interfaces,
//! mirroring how the original LFI sits on top of the dynamic linker and the
//! target binaries without modifying either.

pub mod controller;
pub mod runtime;
pub mod scenario;
pub mod triggers;
pub mod xml;

pub use controller::{
    Controller, ControllerError, RunToCompletion, SessionPrep, TestConfig, TestOutcome, TestReport,
    Workload,
};
pub use runtime::{InjectionEngine, InjectionLog, InjectionRecord, PauseAtCall};
pub use scenario::{FrameSpec, FunctionAssoc, Scenario, ScenarioError, TriggerDecl};
pub use triggers::{
    ArgTrigger, CallCountTrigger, CallStackTrigger, CallerFunctionTrigger, DistributedController,
    DistributedPolicy, DistributedTrigger, FdKindTrigger, ProgramStateTrigger, ProximityTrigger,
    RandomTrigger, SingletonTrigger, Trigger, TriggerBuildError, TriggerCtx, TriggerRegistry,
    WithMutexTrigger,
};
pub use xml::{parse_xml, parse_xml_fragments, XmlError, XmlNode};
