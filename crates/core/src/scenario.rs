//! The fault-injection scenario language (§4 of the paper).
//!
//! A scenario declares named trigger instances and associates them with
//! intercepted library functions, together with the fault to inject (return
//! value and errno side effect). Associating several triggers with one
//! `<function>` element forms a conjunction; repeating `<function>` elements
//! for the same function forms a disjunction. Scenarios can be written by
//! hand in XML, built programmatically, or generated automatically from the
//! call-site analyzer's reports.

use std::collections::BTreeMap;
use std::fmt;

use lfi_analyzer::{CallSiteClass, CallSiteReport};
use lfi_arch::{errno as errno_tbl, Word};
use lfi_profiler::FaultProfile;
use serde::{Deserialize, Serialize};

use crate::xml::{parse_xml_fragments, XmlError, XmlNode};

/// A named trigger instance declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TriggerDecl {
    /// Instance id referenced by `<reftrigger>` elements.
    pub id: String,
    /// Trigger class name, resolved through the trigger registry.
    pub class: String,
    /// Simple key/value parameters (the `<args>` children with text content).
    pub params: BTreeMap<String, String>,
    /// Stack-frame specifications for call-stack triggers.
    pub frames: Vec<FrameSpec>,
}

/// A stack-frame pattern used by call-stack triggers: every populated field
/// must match for the frame to match.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameSpec {
    /// Module (object file) name.
    pub module: Option<String>,
    /// Code offset of the call site within the module.
    pub offset: Option<u64>,
    /// Function name containing the call site.
    pub function: Option<String>,
    /// Source file name.
    pub file: Option<String>,
    /// Source line number.
    pub line: Option<u32>,
}

/// An association between a library function and a conjunction of triggers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionAssoc {
    /// Intercepted function name.
    pub function: String,
    /// Number of call arguments to expose to triggers.
    pub argc: usize,
    /// Return value injected when the triggers fire; `None` means the
    /// association is observational only (the paper's `return="unused"`).
    pub retval: Option<Word>,
    /// errno side effect injected alongside the return value.
    pub errno: Option<Word>,
    /// Ids of the triggers forming the conjunction, in evaluation order.
    pub triggers: Vec<String>,
}

impl FunctionAssoc {
    /// Whether this association injects anything (vs. only observing).
    pub fn injects(&self) -> bool {
        self.retval.is_some()
    }
}

/// A complete fault-injection scenario.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scenario {
    /// Declared trigger instances.
    pub triggers: Vec<TriggerDecl>,
    /// Function associations, in declaration order.
    pub functions: Vec<FunctionAssoc>,
}

/// Scenario parsing / validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// Underlying XML problem.
    Xml(XmlError),
    /// Structural problem (missing attribute, unknown reference, ...).
    Invalid(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Xml(e) => write!(f, "{e}"),
            ScenarioError::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<XmlError> for ScenarioError {
    fn from(e: XmlError) -> Self {
        ScenarioError::Xml(e)
    }
}

fn parse_value(text: &str) -> Option<Word> {
    let text = text.trim();
    if text.eq_ignore_ascii_case("unused") {
        return None;
    }
    if let Some(v) = errno_tbl::from_name(text) {
        return Some(v);
    }
    if let Some(hex) = text.strip_prefix("0x") {
        return Word::from_str_radix(hex, 16).ok();
    }
    text.parse().ok()
}

impl Scenario {
    /// Create an empty scenario.
    pub fn new() -> Scenario {
        Scenario::default()
    }

    /// Add a trigger declaration (builder style).
    pub fn with_trigger(mut self, decl: TriggerDecl) -> Scenario {
        self.triggers.push(decl);
        self
    }

    /// Add a function association (builder style).
    pub fn with_function(mut self, assoc: FunctionAssoc) -> Scenario {
        self.functions.push(assoc);
        self
    }

    /// Names of all functions that must be intercepted for this scenario.
    pub fn intercepted_functions(&self) -> Vec<String> {
        let mut names: Vec<String> = self.functions.iter().map(|f| f.function.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Find a trigger declaration by id.
    pub fn trigger(&self, id: &str) -> Option<&TriggerDecl> {
        self.triggers.iter().find(|t| t.id == id)
    }

    /// Check internal consistency: trigger ids must be unique and every
    /// referenced trigger must be declared.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let mut seen = std::collections::BTreeSet::new();
        for decl in &self.triggers {
            if !seen.insert(decl.id.as_str()) {
                return Err(ScenarioError::Invalid(format!(
                    "duplicate trigger id `{}`",
                    decl.id
                )));
            }
        }
        for assoc in &self.functions {
            for id in &assoc.triggers {
                if self.trigger(id).is_none() {
                    return Err(ScenarioError::Invalid(format!(
                        "function `{}` references undeclared trigger `{id}`",
                        assoc.function
                    )));
                }
            }
        }
        Ok(())
    }

    /// Parse a scenario from its XML form.
    pub fn parse_xml(text: &str) -> Result<Scenario, ScenarioError> {
        let root = parse_xml_fragments(text)?;
        let mut scenario = Scenario::new();
        for node in &root.children {
            match node.name.as_str() {
                "trigger" => scenario.triggers.push(parse_trigger_decl(node)?),
                "function" => scenario.functions.push(parse_function(node)?),
                other => {
                    return Err(ScenarioError::Invalid(format!(
                        "unexpected element `{other}`"
                    )))
                }
            }
        }
        scenario.validate()?;
        Ok(scenario)
    }

    /// Render the scenario as XML.
    pub fn to_xml(&self) -> String {
        let mut root = XmlNode {
            name: "scenario".into(),
            ..XmlNode::default()
        };
        for decl in &self.triggers {
            let mut node = XmlNode {
                name: "trigger".into(),
                attrs: vec![
                    ("id".into(), decl.id.clone()),
                    ("class".into(), decl.class.clone()),
                ],
                ..XmlNode::default()
            };
            if !decl.params.is_empty() || !decl.frames.is_empty() {
                let mut args = XmlNode {
                    name: "args".into(),
                    ..XmlNode::default()
                };
                for (key, value) in &decl.params {
                    args.children.push(XmlNode {
                        name: key.clone(),
                        text: value.clone(),
                        ..XmlNode::default()
                    });
                }
                for frame in &decl.frames {
                    let mut f = XmlNode {
                        name: "frame".into(),
                        ..XmlNode::default()
                    };
                    let mut push = |name: &str, value: Option<String>| {
                        if let Some(value) = value {
                            f.children.push(XmlNode {
                                name: name.into(),
                                text: value,
                                ..XmlNode::default()
                            });
                        }
                    };
                    push("module", frame.module.clone());
                    push("offset", frame.offset.map(|o| format!("{o:x}")));
                    push("function", frame.function.clone());
                    push("file", frame.file.clone());
                    push("line", frame.line.map(|l| l.to_string()));
                    args.children.push(f);
                }
                node.children.push(args);
            }
            root.children.push(node);
        }
        for assoc in &self.functions {
            let mut node = XmlNode {
                name: "function".into(),
                attrs: vec![
                    ("name".into(), assoc.function.clone()),
                    ("argc".into(), assoc.argc.to_string()),
                ],
                ..XmlNode::default()
            };
            match assoc.retval {
                Some(v) => node.attrs.push(("return".into(), v.to_string())),
                None => node.attrs.push(("return".into(), "unused".into())),
            }
            match assoc.errno {
                Some(v) => node.attrs.push((
                    "errno".into(),
                    errno_tbl::name(v)
                        .map(str::to_string)
                        .unwrap_or(v.to_string()),
                )),
                None => node.attrs.push(("errno".into(), "unused".into())),
            }
            for id in &assoc.triggers {
                node.children.push(XmlNode {
                    name: "reftrigger".into(),
                    attrs: vec![("ref".into(), id.clone())],
                    ..XmlNode::default()
                });
            }
            root.children.push(node);
        }
        root.to_xml()
    }

    /// Build the canonical single-fault-point scenario: a call-stack trigger
    /// pinned to one call-site offset of `module`, injecting `retval` (and
    /// optionally `errno`) into `function`. This is the unit of work of
    /// analyzer-driven bug hunts and campaign sweeps.
    pub fn single_fault_point(
        module: &str,
        function: &str,
        offset: u64,
        retval: Word,
        errno: Option<Word>,
    ) -> Scenario {
        let id = format!("{function}_{offset:x}");
        Scenario::new()
            .with_trigger(TriggerDecl {
                id: id.clone(),
                class: "CallStackTrigger".into(),
                params: BTreeMap::new(),
                frames: vec![FrameSpec {
                    module: Some(module.to_string()),
                    offset: Some(offset),
                    ..FrameSpec::default()
                }],
            })
            .with_function(FunctionAssoc {
                function: function.to_string(),
                argc: 3,
                retval: Some(retval),
                errno,
                triggers: vec![id],
            })
    }

    /// Generate scenarios from call-site analysis reports, as the analyzer
    /// does in the paper (§5): one call-stack-triggered injection per
    /// unchecked (and optionally partially checked) call site, using the
    /// fault profile to pick a realistic return value and errno.
    pub fn from_reports(
        reports: &[CallSiteReport],
        profile: &FaultProfile,
        include_partial: bool,
    ) -> Scenario {
        let mut scenario = Scenario::new();
        for report in reports {
            let Some(func_profile) = profile.function(&report.function) else {
                continue;
            };
            let Some(case) = func_profile.representative_case() else {
                continue;
            };
            for site in &report.sites {
                let eligible = site.class == CallSiteClass::Unchecked
                    || (include_partial && site.class == CallSiteClass::PartiallyChecked);
                if !eligible {
                    continue;
                }
                let id = format!("{}_{:x}", report.function, site.offset);
                scenario.triggers.push(TriggerDecl {
                    id: id.clone(),
                    class: "CallStackTrigger".into(),
                    params: BTreeMap::new(),
                    frames: vec![FrameSpec {
                        module: Some(report.program.clone()),
                        offset: Some(site.offset),
                        ..FrameSpec::default()
                    }],
                });
                scenario.functions.push(FunctionAssoc {
                    function: report.function.clone(),
                    argc: 3,
                    retval: Some(case.retval),
                    errno: case.errno,
                    triggers: vec![id],
                });
            }
        }
        scenario
    }
}

fn parse_frame(node: &XmlNode) -> FrameSpec {
    FrameSpec {
        module: node.child_text("module").map(|s| s.trim().to_string()),
        offset: node
            .child_text("offset")
            .and_then(|s| u64::from_str_radix(s.trim().trim_start_matches("0x"), 16).ok()),
        function: node.child_text("function").map(|s| s.trim().to_string()),
        file: node.child_text("file").map(|s| s.trim().to_string()),
        line: node.child_text("line").and_then(|s| s.trim().parse().ok()),
    }
}

fn parse_trigger_decl(node: &XmlNode) -> Result<TriggerDecl, ScenarioError> {
    let id = node
        .attr("id")
        .ok_or_else(|| ScenarioError::Invalid("<trigger> needs an `id`".into()))?
        .to_string();
    let class = node
        .attr("class")
        .ok_or_else(|| ScenarioError::Invalid("<trigger> needs a `class`".into()))?
        .to_string();
    let mut params = BTreeMap::new();
    let mut frames = Vec::new();
    if let Some(args) = node.child("args") {
        for child in &args.children {
            if child.name == "frame" {
                frames.push(parse_frame(child));
            } else {
                params.insert(child.name.clone(), child.text.clone());
            }
        }
    }
    Ok(TriggerDecl {
        id,
        class,
        params,
        frames,
    })
}

fn parse_function(node: &XmlNode) -> Result<FunctionAssoc, ScenarioError> {
    let function = node
        .attr("name")
        .ok_or_else(|| ScenarioError::Invalid("<function> needs a `name`".into()))?
        .to_string();
    let argc = node
        .attr("argc")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0usize);
    let retval = node
        .attr("return")
        .or(node.attr("retval"))
        .and_then(parse_value);
    let errno = node.attr("errno").and_then(parse_value);
    let triggers = node
        .children_named("reftrigger")
        .filter_map(|c| c.attr("ref").map(str::to_string))
        .collect();
    Ok(FunctionAssoc {
        function,
        argc,
        retval,
        errno,
        triggers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_STYLE: &str = r#"
        <!-- Declare & initialize a parametrized trigger instance -->
        <trigger id="readTrig2" class="ReadPipe">
            <args>
                <low>1024</low>
                <high>4096</high>
            </args>
        </trigger>
        <trigger id="mutexTrig" class="WithMutexTrigger" />

        <!-- Invoke the composition for read() calls -->
        <function name="read" argc="3" return="-1" errno="EINVAL">
            <reftrigger ref="readTrig2" />
            <reftrigger ref="mutexTrig" />
        </function>

        <!-- The trigger needs to see the lock/unlock calls -->
        <function name="pthread_mutex_lock" return="unused" errno="unused">
            <reftrigger ref="mutexTrig" />
        </function>
        <function name="pthread_mutex_unlock" return="unused" errno="unused">
            <reftrigger ref="mutexTrig" />
        </function>
    "#;

    #[test]
    fn parses_the_papers_example_scenario() {
        let scenario = Scenario::parse_xml(PAPER_STYLE).unwrap();
        assert_eq!(scenario.triggers.len(), 2);
        assert_eq!(scenario.functions.len(), 3);
        let read = &scenario.functions[0];
        assert_eq!(read.function, "read");
        assert_eq!(read.argc, 3);
        assert_eq!(read.retval, Some(-1));
        assert_eq!(read.errno, Some(lfi_arch::errno::EINVAL));
        assert_eq!(read.triggers, vec!["readTrig2", "mutexTrig"]);
        // Observational associations carry no injection.
        assert!(!scenario.functions[1].injects());
        let decl = scenario.trigger("readTrig2").unwrap();
        assert_eq!(decl.params.get("low").map(String::as_str), Some("1024"));
        assert_eq!(
            scenario.intercepted_functions(),
            vec!["pthread_mutex_lock", "pthread_mutex_unlock", "read"]
        );
    }

    #[test]
    fn xml_roundtrip_preserves_the_scenario() {
        let scenario = Scenario::parse_xml(PAPER_STYLE).unwrap();
        let xml = scenario.to_xml();
        let back = Scenario::parse_xml(&xml).unwrap();
        assert_eq!(back, scenario);
    }

    #[test]
    fn frame_specs_parse_like_the_pbft_example() {
        let doc = r#"
            <trigger id="8054a69" class="CallStackTrigger">
                <args>
                    <frame>
                        <module>bft-simple-server</module>
                        <offset>54a69</offset>
                    </frame>
                </args>
            </trigger>
            <function name="fopen" return="0" errno="EINVAL">
                <reftrigger ref="8054a69" />
            </function>
        "#;
        let scenario = Scenario::parse_xml(doc).unwrap();
        let frame = &scenario.triggers[0].frames[0];
        assert_eq!(frame.module.as_deref(), Some("bft-simple-server"));
        assert_eq!(frame.offset, Some(0x54a69));
        assert_eq!(scenario.functions[0].retval, Some(0));
    }

    #[test]
    fn undeclared_trigger_references_are_rejected() {
        let doc = r#"
            <function name="read" return="-1" errno="EIO">
                <reftrigger ref="ghost" />
            </function>
        "#;
        assert!(matches!(
            Scenario::parse_xml(doc),
            Err(ScenarioError::Invalid(_))
        ));
    }

    #[test]
    fn duplicate_trigger_ids_are_rejected() {
        let dup = TriggerDecl {
            id: "t".into(),
            class: "SingletonTrigger".into(),
            params: BTreeMap::new(),
            frames: vec![],
        };
        let scenario = Scenario::new().with_trigger(dup.clone()).with_trigger(dup);
        assert!(matches!(
            scenario.validate(),
            Err(ScenarioError::Invalid(msg)) if msg.contains("duplicate trigger id")
        ));
    }

    #[test]
    fn programmatic_undeclared_references_are_rejected() {
        let scenario = Scenario::new().with_function(FunctionAssoc {
            function: "read".into(),
            argc: 3,
            retval: Some(-1),
            errno: None,
            triggers: vec!["ghost".into()],
        });
        assert!(matches!(
            scenario.validate(),
            Err(ScenarioError::Invalid(msg)) if msg.contains("undeclared trigger")
        ));
    }

    #[test]
    fn single_fault_point_scenarios_validate_and_roundtrip() {
        let scenario = Scenario::single_fault_point("app", "read", 0x40, -1, Some(errno_tbl::EIO));
        scenario.validate().unwrap();
        assert_eq!(scenario.intercepted_functions(), vec!["read"]);
        let frame = &scenario.triggers[0].frames[0];
        assert_eq!(frame.module.as_deref(), Some("app"));
        assert_eq!(frame.offset, Some(0x40));
        let back = Scenario::parse_xml(&scenario.to_xml()).unwrap();
        assert_eq!(back, scenario);
    }

    #[test]
    fn errno_names_and_numbers_are_accepted() {
        let doc = r#"
            <trigger id="t" class="RandomTrigger"><args><probability>0.5</probability></args></trigger>
            <function name="write" return="-1" errno="28"><reftrigger ref="t" /></function>
        "#;
        let scenario = Scenario::parse_xml(doc).unwrap();
        assert_eq!(scenario.functions[0].errno, Some(lfi_arch::errno::ENOSPC));
    }
}
