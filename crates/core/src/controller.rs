//! The LFI controller: test orchestration.
//!
//! The controller owns the shared libraries of the system under test, builds
//! the interposition image for a scenario, runs a developer-provided workload
//! against it, monitors how the process terminates, and collects the
//! injection log, output, coverage and statistics into a [`TestReport`] —
//! the artifact developers use to diagnose and fix the exposed bugs (§2).

use std::fmt;
use std::sync::Arc;

use lfi_analyzer::{
    analyze_program, propagation_reports, AnalysisConfig, CallSiteReport, PropagationReport,
};
use lfi_obj::Module;
use lfi_profiler::{profile_library, FaultProfile};
use lfi_vm::{
    Coverage, ExecStats, Fault, HookHandler, Image, LoadError, Loader, Machine, NetHandle,
    ProcessConfig, RunExit,
};
use serde::{Deserialize, Serialize};

use crate::runtime::{InjectionEngine, InjectionLog, PauseAtCall};
use crate::scenario::Scenario;
use crate::triggers::{TriggerBuildError, TriggerRegistry};

/// How a test run ended, from the tester's point of view.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TestOutcome {
    /// The program terminated normally with exit code 0.
    Passed,
    /// The program terminated normally with a non-zero exit code — it noticed
    /// the fault and failed cleanly.
    CleanFailure(i64),
    /// The program crashed (segmentation fault, abort, double unlock, ...):
    /// a recovery bug candidate.
    Crashed(String),
    /// The run did not finish within its instruction budget, or every thread
    /// blocked (a hang candidate).
    Hung,
}

impl TestOutcome {
    /// Whether this outcome indicates a crash.
    pub fn is_crash(&self) -> bool {
        matches!(self, TestOutcome::Crashed(_))
    }
}

/// A completed test run.
#[derive(Debug)]
pub struct TestReport {
    /// Raw VM exit.
    pub exit: RunExit,
    /// Interpreted outcome.
    pub outcome: TestOutcome,
    /// The crash details, when the run crashed.
    pub fault: Option<Fault>,
    /// Everything the program printed.
    pub output: String,
    /// The injection log.
    pub injections: InjectionLog,
    /// Virtual time consumed.
    pub virtual_time: u64,
    /// Execution statistics.
    pub stats: ExecStats,
    /// Line coverage (empty unless requested in the config).
    pub coverage: Coverage,
}

impl TestReport {
    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{:?} after {} injections ({} interceptions, {} ticks)",
            self.outcome,
            self.injections.injection_count(),
            self.injections.interceptions,
            self.virtual_time
        )
    }
}

/// Test-run configuration.
#[derive(Debug, Clone)]
pub struct TestConfig {
    /// Instruction budget for the run.
    pub max_instructions: u64,
    /// Whether to record line coverage.
    pub record_coverage: bool,
    /// RNG seed for the process under test.
    pub seed: u64,
    /// Node id on the simulated network.
    pub node_id: i64,
    /// Environment variables.
    pub env: Vec<(String, String)>,
    /// Program arguments.
    pub args: Vec<String>,
    /// Heap limit in bytes.
    pub heap_limit: u64,
    /// Virtual-time cost charged per trigger evaluation.
    pub trigger_eval_cost: u64,
    /// Evaluate triggers but never inject (overhead measurements).
    pub observe_only: bool,
}

impl Default for TestConfig {
    fn default() -> Self {
        TestConfig {
            max_instructions: 200_000_000,
            record_coverage: false,
            seed: 1,
            node_id: 0,
            env: Vec::new(),
            args: Vec::new(),
            heap_limit: 64 << 20,
            trigger_eval_cost: 10,
            observe_only: false,
        }
    }
}

/// A test workload: prepares the environment (filesystem, network, arguments)
/// and drives the program. The default `drive` simply runs the program to
/// completion; interactive workloads (servers) override it to interleave
/// stimulus with execution.
pub trait Workload {
    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "default"
    }

    /// Prepare the machine (populate the filesystem, attach a network, ...).
    fn setup(&mut self, _machine: &mut Machine) {}

    /// Drive the program; return how it exited.
    fn drive(
        &mut self,
        machine: &mut Machine,
        handler: &mut dyn HookHandler,
        budget: u64,
    ) -> RunExit {
        machine.run(handler, budget)
    }
}

/// A workload that does nothing beyond running the program.
#[derive(Debug, Default, Clone, Copy)]
pub struct RunToCompletion;

impl Workload for RunToCompletion {}

/// The result of [`Controller::prepare_session`] /
/// [`Controller::deepen_session`]: a workload paused at an injectable
/// library call (or run to its terminal state when it never makes one).
/// Snapshot `machine` to fork per-scenario runs from it.
#[derive(Debug)]
pub struct SessionPrep {
    /// The machine, paused before an injectable call — or finished.
    pub machine: Machine,
    /// The function whose call paused the run, if the run paused.
    pub paused_at: Option<String>,
    /// How the prefix stopped ([`RunExit::Paused`] in the common case).
    pub prefix_exit: RunExit,
    /// Instructions consumed by the shared prefix (forks subtract this from
    /// the per-run budget so budget exhaustion behaves like a fresh run).
    pub instructions_used: u64,
    /// Injectable calls forwarded before the pause, in call order (empty
    /// for a first-call prepare; deepening runs record the calls they
    /// replayed past, which is how session trees extend their call trace).
    pub forwarded: Vec<String>,
}

impl SessionPrep {
    /// The instruction budget left for forks of this prefix, or `None`
    /// when the prefix must not back a session at all:
    ///
    /// * it ended abnormally — [`RunExit::Fault`], [`RunExit::Blocked`] or
    ///   [`RunExit::Budget`] — so every fork would just replay the broken
    ///   terminal state instead of a real injection run; or
    /// * it consumed the entire instruction budget, so every fork would
    ///   instantly exit [`RunExit::Budget`] and triage as hung.
    ///
    /// Callers should fall back to fresh execution on `None`, exactly like
    /// the randomness-consuming-prefix refusal.
    pub fn fork_budget(&self, max_instructions: u64) -> Option<u64> {
        match self.prefix_exit {
            RunExit::Fault(_) | RunExit::Blocked | RunExit::Budget => return None,
            RunExit::Paused | RunExit::Exited(_) => {}
        }
        let left = max_instructions.saturating_sub(self.instructions_used);
        if left == 0 {
            return None;
        }
        Some(left)
    }
}

/// Controller errors.
#[derive(Debug)]
pub enum ControllerError {
    /// A trigger class in the scenario could not be built.
    Trigger(TriggerBuildError),
    /// The program image failed to load.
    Load(LoadError),
}

impl fmt::Display for ControllerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControllerError::Trigger(e) => write!(f, "{e}"),
            ControllerError::Load(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ControllerError {}

impl From<TriggerBuildError> for ControllerError {
    fn from(e: TriggerBuildError) -> Self {
        ControllerError::Trigger(e)
    }
}

impl From<LoadError> for ControllerError {
    fn from(e: LoadError) -> Self {
        ControllerError::Load(e)
    }
}

/// The LFI controller.
#[derive(Debug, Default)]
pub struct Controller {
    libraries: Vec<Module>,
    registry: TriggerRegistry,
    net: Option<NetHandle>,
}

impl Controller {
    /// Create a controller with the stock trigger registry and no libraries.
    pub fn new() -> Controller {
        Controller::default()
    }

    /// Register a shared library of the system under test.
    pub fn add_library(&mut self, library: Module) -> &mut Self {
        self.libraries.push(library);
        self
    }

    /// The registered shared libraries, in registration order.
    pub fn libraries(&self) -> &[Module] {
        &self.libraries
    }

    /// Access the trigger registry (e.g. to register custom trigger classes).
    pub fn registry_mut(&mut self) -> &mut TriggerRegistry {
        &mut self.registry
    }

    /// Attach a shared network that every test process will join.
    pub fn attach_net(&mut self, net: NetHandle) -> &mut Self {
        self.net = Some(net);
        self
    }

    /// Merge the fault profiles of every registered library.
    pub fn profile_libraries(&self) -> FaultProfile {
        let mut merged = FaultProfile::default();
        for library in &self.libraries {
            let profile = profile_library(library);
            if merged.library.is_empty() {
                merged.library = profile.library.clone();
            }
            merged.merge(&profile);
        }
        merged
    }

    /// Run the call-site analyzer on a target executable against the
    /// registered libraries' fault profiles.
    pub fn analyze(&self, exe: &Module) -> Vec<CallSiteReport> {
        analyze_program(exe, &self.profile_libraries(), AnalysisConfig::default())
    }

    /// Run the interprocedural error-propagation pass over `exe`'s call-site
    /// reports, resolving each site's verdict against the call graph of the
    /// executable and every registered library (so the wrapper pattern is
    /// judged by what the wrapper's callers do, not by the wrapper alone).
    pub fn analyze_propagation(
        &self,
        exe: &Module,
        reports: &[CallSiteReport],
    ) -> Vec<PropagationReport> {
        let mut modules: Vec<&Module> = Vec::with_capacity(self.libraries.len() + 1);
        modules.push(exe);
        modules.extend(self.libraries.iter());
        propagation_reports(&modules, reports, AnalysisConfig::default())
    }

    /// Generate an injection scenario for all unchecked call sites of the
    /// executable, exactly like the analyzer-driven workflow of §5/§7.1.
    pub fn generate_scenario(&self, exe: &Module, include_partial: bool) -> Scenario {
        let reports = self.analyze(exe);
        Scenario::from_reports(&reports, &self.profile_libraries(), include_partial)
    }

    /// Load `exe` against the registered libraries with the given function
    /// names interposed, independent of any scenario. The returned image is
    /// immutable and shareable: session executors cache it per target so the
    /// loader's layout and predecoding work is paid once, not once per run.
    pub fn build_image(
        &self,
        exe: &Module,
        interpose: &[String],
    ) -> Result<Arc<Image>, ControllerError> {
        let mut loader = Loader::new();
        for library in &self.libraries {
            loader.add_library(library.clone());
        }
        loader.interpose_all(interpose.iter().cloned());
        Ok(Arc::new(loader.load(exe.clone())?))
    }

    fn machine_from_image(&self, image: Arc<Image>, config: &TestConfig) -> Machine {
        let mut machine = Machine::from_image(
            image,
            ProcessConfig {
                node_id: config.node_id,
                seed: config.seed,
                heap_limit: config.heap_limit,
                env: config.env.clone(),
                args: config.args.clone(),
                record_coverage: config.record_coverage,
                ..ProcessConfig::default()
            },
        );
        if let Some(net) = &self.net {
            machine.attach_net(net.clone());
        }
        machine
    }

    /// Build the machine for a scenario without running it (used by custom
    /// drivers such as the multi-replica PBFT harness).
    pub fn prepare(
        &self,
        exe: &Module,
        scenario: &Scenario,
        config: &TestConfig,
    ) -> Result<(Machine, InjectionEngine), ControllerError> {
        let mut engine = InjectionEngine::with_registry(scenario.clone(), self.registry.clone())?;
        engine.trigger_eval_cost = config.trigger_eval_cost;
        engine.observe_only = config.observe_only;
        let image = self.build_image(exe, &engine.interposed_functions())?;
        Ok((self.machine_from_image(image, config), engine))
    }

    /// Run a workload up to its first call to any of `functions` and return
    /// the paused machine — the shared prefix of a session.
    ///
    /// The image must interpose (at least) `functions`; the workload's
    /// `setup` runs, then the program executes under a
    /// [`PauseAtCall::at_first`] handler that forwards every interception
    /// until one of the pause functions is called. The machine stops with
    /// the program counter still on that call, so a snapshot taken from the
    /// result can be resumed under any [`InjectionEngine`], which then sees
    /// the very same call as its first interception. When the workload
    /// never calls a pause function, the machine simply runs to its
    /// terminal state (and forks of it return that state immediately).
    pub fn prepare_session(
        &self,
        image: Arc<Image>,
        functions: &[String],
        workload: &mut dyn Workload,
        config: &TestConfig,
    ) -> SessionPrep {
        let mut machine = self.machine_from_image(image, config);
        workload.setup(&mut machine);
        let pause = PauseAtCall::at_first(functions.iter().cloned());
        Controller::finish_prep(machine, pause, workload, config.max_instructions)
    }

    /// Resume a machine paused by a previous [`Controller::prepare_session`]
    /// or `deepen_session` stop and run it to the next pause point of
    /// `pause` — the deepening step session trees are grown by.
    ///
    /// The machine is typically a [`lfi_vm::MachineSnapshot`] fork of an
    /// existing session node, *not* reseeded, so the deepened prefix stays
    /// on the root seed's deterministic path (callers must still check
    /// [`Machine::rng_is_pristine`] before snapshotting the result, exactly
    /// as for a first-call prefix). `max_instructions` is the **total**
    /// per-run instruction budget counted from process start; the method
    /// charges the resumed machine only for what is left of it. Every
    /// injectable call forwarded on the way is recorded in
    /// [`SessionPrep::forwarded`], extending the caller's call trace.
    pub fn deepen_session(
        &self,
        mut machine: Machine,
        mut pause: PauseAtCall,
        max_instructions: u64,
    ) -> SessionPrep {
        let remaining = max_instructions.saturating_sub(machine.stats.instructions);
        // Deepening resumes mid-drive, after every stock workload's setup
        // already ran and queued its stimulus; the drive phase itself is a
        // plain `Machine::run` for every stock workload, so resuming with
        // `run` replays exactly what the original drive would have done.
        let exit = machine.run(&mut pause, remaining);
        let instructions_used = machine.stats.instructions;
        SessionPrep {
            machine,
            paused_at: pause.paused_at,
            prefix_exit: exit,
            instructions_used,
            forwarded: pause.forwarded,
        }
    }

    /// Advance a machine paused at an injectable call to the *next*
    /// injectable call — [`Controller::deepen_session`] in its
    /// pause-at-each-call mode. The re-observed paused call is forwarded
    /// (appearing in [`SessionPrep::forwarded`]) and the machine stops one
    /// call later, so a caller looping over `step_session` visits every
    /// intermediate call of a deepening walk and can snapshot each one,
    /// instead of paying one full walk per depth.
    pub fn step_session<I, S>(
        &self,
        machine: Machine,
        functions: I,
        max_instructions: u64,
    ) -> SessionPrep
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.deepen_session(machine, PauseAtCall::at_next(functions), max_instructions)
    }

    /// Run a workload to its terminal state, recording the order of every
    /// call to `functions` — the injectable-call trace that session trees
    /// are keyed by (used by benches to measure injection depth).
    pub fn trace_session_calls(
        &self,
        image: Arc<Image>,
        functions: &[String],
        workload: &mut dyn Workload,
        config: &TestConfig,
    ) -> SessionPrep {
        let mut machine = self.machine_from_image(image, config);
        workload.setup(&mut machine);
        let pause = PauseAtCall::trace_only(functions.iter().cloned());
        Controller::finish_prep(machine, pause, workload, config.max_instructions)
    }

    fn finish_prep(
        mut machine: Machine,
        mut pause: PauseAtCall,
        workload: &mut dyn Workload,
        max_instructions: u64,
    ) -> SessionPrep {
        let exit = workload.drive(&mut machine, &mut pause, max_instructions);
        let instructions_used = machine.stats.instructions;
        SessionPrep {
            machine,
            paused_at: pause.paused_at,
            prefix_exit: exit,
            instructions_used,
            forwarded: pause.forwarded,
        }
    }

    /// Run one test: load the program with the scenario's interpositions,
    /// run the workload, and collect the report.
    pub fn run_test(
        &self,
        exe: &Module,
        scenario: &Scenario,
        workload: &mut dyn Workload,
        config: &TestConfig,
    ) -> Result<TestReport, ControllerError> {
        let (mut machine, mut engine) = self.prepare(exe, scenario, config)?;
        workload.setup(&mut machine);
        let exit = workload.drive(&mut machine, &mut engine, config.max_instructions);
        let (outcome, fault) = match &exit {
            RunExit::Exited(0) => (TestOutcome::Passed, None),
            RunExit::Exited(code) => (TestOutcome::CleanFailure(*code), None),
            RunExit::Fault(fault) => (TestOutcome::Crashed(fault.to_string()), Some(fault.clone())),
            // `Paused` can only come from a pause handler; scenario engines
            // never pause, but a custom workload could — report it as a hang
            // rather than a pass.
            RunExit::Blocked | RunExit::Budget | RunExit::Paused => (TestOutcome::Hung, None),
        };
        Ok(TestReport {
            exit,
            outcome,
            fault,
            output: machine.output_string(),
            injections: engine.log,
            virtual_time: machine.clock(),
            stats: machine.stats,
            coverage: machine.coverage,
        })
    }

    /// Run the same scenario repeatedly (different seeds) and report how many
    /// runs crashed — the repetition loop behind Table 2's precision numbers.
    pub fn run_repeated(
        &self,
        exe: &Module,
        scenario: &Scenario,
        make_workload: &mut dyn FnMut() -> Box<dyn Workload>,
        config: &TestConfig,
        runs: u64,
    ) -> Result<Vec<TestReport>, ControllerError> {
        let mut reports = Vec::with_capacity(runs as usize);
        for i in 0..runs {
            let mut run_config = config.clone();
            run_config.seed = config.seed.wrapping_add(i);
            let mut workload = make_workload();
            reports.push(self.run_test(exe, scenario, workload.as_mut(), &run_config)?);
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_classification_helpers() {
        assert!(TestOutcome::Crashed("segfault".into()).is_crash());
        assert!(!TestOutcome::Passed.is_crash());
        assert!(!TestOutcome::CleanFailure(2).is_crash());
    }

    #[test]
    fn empty_scenario_runs_report_trigger_errors_eagerly() {
        // A scenario referencing an unknown trigger class fails in `prepare`,
        // before anything runs.
        let controller = Controller::new();
        let scenario = Scenario::parse_xml(
            r#"<trigger id="t" class="DoesNotExist" />
               <function name="read" return="-1" errno="EIO"><reftrigger ref="t" /></function>"#,
        )
        .unwrap();
        let exe = Module::new("app", lfi_obj::ModuleKind::Executable);
        let err = controller
            .prepare(&exe, &scenario, &TestConfig::default())
            .expect_err("must fail");
        assert!(matches!(err, ControllerError::Trigger(_)));
    }
}
