//! Fault-injection triggers (§3 of the paper).
//!
//! A trigger is a predicate over program state that decides whether an
//! intercepted library call should fail. Triggers are pluggable: the
//! [`Trigger`] trait plays the role of the paper's C++ `Trigger` interface,
//! and the [`TriggerRegistry`] plays the role of its Registry-pattern class
//! lookup (`DECLARE_TRIGGER` / `Class.forName`-style instantiation). Stock
//! triggers cover the six families described in the paper — call stack,
//! program state, call count, singleton, random, and distributed — plus a few
//! argument-inspecting helpers used by the evaluation's custom scenarios.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use lfi_arch::Word;
use lfi_vm::CallContext;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::scenario::{FrameSpec, TriggerDecl};

/// Everything a trigger may inspect when deciding whether to fire.
pub struct TriggerCtx<'a, 'm> {
    /// The intercepted function name.
    pub function: &'a str,
    /// How many calls to this function have been intercepted so far
    /// (including the current one).
    pub call_count: u64,
    /// VM-side view of the intercepted call (arguments, backtrace, globals,
    /// file descriptors, thread, node, virtual time).
    pub call: &'a mut CallContext<'m>,
}

/// The trigger interface. `eval` is called for every intercepted call the
/// trigger instance is associated with; returning `true` requests injection.
pub trait Trigger: Send {
    /// Decide whether to fire for this interception.
    fn eval(&mut self, ctx: &mut TriggerCtx<'_, '_>) -> bool;
}

/// Errors constructing trigger instances from declarations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriggerBuildError {
    /// Trigger class that failed to build.
    pub class: String,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for TriggerBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot build trigger `{}`: {}", self.class, self.message)
    }
}

impl std::error::Error for TriggerBuildError {}

/// Factory signature: build a trigger instance from its declaration.
pub type TriggerFactory =
    Arc<dyn Fn(&TriggerDecl) -> Result<Box<dyn Trigger>, TriggerBuildError> + Send + Sync>;

/// Registry mapping trigger class names to factories.
#[derive(Clone)]
pub struct TriggerRegistry {
    factories: BTreeMap<String, TriggerFactory>,
}

impl fmt::Debug for TriggerRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TriggerRegistry")
            .field("classes", &self.class_names())
            .finish()
    }
}

impl Default for TriggerRegistry {
    fn default() -> Self {
        TriggerRegistry::with_stock_triggers()
    }
}

fn param<T: std::str::FromStr>(decl: &TriggerDecl, key: &str) -> Option<T> {
    decl.params.get(key).and_then(|v| v.trim().parse().ok())
}

fn require<T: std::str::FromStr>(decl: &TriggerDecl, key: &str) -> Result<T, TriggerBuildError> {
    param(decl, key).ok_or_else(|| TriggerBuildError {
        class: decl.class.clone(),
        message: format!("missing or invalid parameter `{key}`"),
    })
}

impl TriggerRegistry {
    /// An empty registry with no classes.
    pub fn empty() -> TriggerRegistry {
        TriggerRegistry {
            factories: BTreeMap::new(),
        }
    }

    /// A registry pre-populated with every stock trigger.
    pub fn with_stock_triggers() -> TriggerRegistry {
        let mut registry = TriggerRegistry::empty();
        registry.register("CallStackTrigger", |decl| {
            Ok(Box::new(CallStackTrigger {
                frames: decl.frames.clone(),
            }) as Box<dyn Trigger>)
        });
        registry.register("ProgramStateTrigger", |decl| {
            let variable: String = require(decl, "variable")?;
            let op = decl
                .params
                .get("op")
                .cloned()
                .unwrap_or_else(|| "==".to_string());
            let value: Word = require(decl, "value")?;
            Ok(Box::new(ProgramStateTrigger {
                variable,
                op,
                value,
            }))
        });
        registry.register("CallCountTrigger", |decl| {
            let count: u64 = require(decl, "count")?;
            Ok(Box::new(CallCountTrigger { count }))
        });
        registry.register("SingletonTrigger", |_| {
            Ok(Box::new(SingletonTrigger { fired: false }))
        });
        registry.register("RandomTrigger", |decl| {
            let probability: f64 = require(decl, "probability")?;
            let seed: u64 = param(decl, "seed").unwrap_or(0x1f1);
            Ok(Box::new(RandomTrigger {
                probability,
                rng: StdRng::seed_from_u64(seed),
            }))
        });
        registry.register("ArgTrigger", |decl| {
            let index: usize = require(decl, "index")?;
            let value: Word = require(decl, "value")?;
            Ok(Box::new(ArgTrigger { index, value }))
        });
        registry.register("FdKindTrigger", |decl| {
            let index: usize = require(decl, "index")?;
            let kind: Word = require(decl, "kind")?;
            Ok(Box::new(FdKindTrigger { index, kind }))
        });
        registry.register("WithMutexTrigger", |_| Ok(Box::new(WithMutexTrigger)));
        registry.register("CallerFunctionTrigger", |decl| {
            let function: String = require(decl, "function")?;
            let anywhere = param(decl, "anywhere").unwrap_or(1i64) != 0;
            Ok(Box::new(CallerFunctionTrigger { function, anywhere }))
        });
        registry.register("ProximityTrigger", |decl| {
            let watch: String = require(decl, "watch")?;
            let distance: u32 = param(decl, "distance").unwrap_or(2);
            Ok(Box::new(ProximityTrigger {
                watch,
                distance,
                last_seen: None,
            }))
        });
        registry
    }

    /// Register (or replace) a trigger class. Custom triggers are plugged in
    /// exactly like stock ones, mirroring the paper's "drop the class in a
    /// directory and reference it by name" workflow.
    pub fn register<F>(&mut self, class: &str, factory: F)
    where
        F: Fn(&TriggerDecl) -> Result<Box<dyn Trigger>, TriggerBuildError> + Send + Sync + 'static,
    {
        self.factories.insert(class.to_string(), Arc::new(factory));
    }

    /// Instantiate a trigger from its declaration.
    pub fn build(&self, decl: &TriggerDecl) -> Result<Box<dyn Trigger>, TriggerBuildError> {
        match self.factories.get(&decl.class) {
            Some(factory) => factory(decl),
            None => Err(TriggerBuildError {
                class: decl.class.clone(),
                message: "unknown trigger class".to_string(),
            }),
        }
    }

    /// Names of all registered classes.
    pub fn class_names(&self) -> Vec<String> {
        self.factories.keys().cloned().collect()
    }
}

// ---------------------------------------------------------------------------
// Stock triggers.
// ---------------------------------------------------------------------------

/// Fires when every frame specification matches some frame of the current
/// call stack (the innermost frame is the intercepted call site itself).
pub struct CallStackTrigger {
    /// Frame patterns that must all be present.
    pub frames: Vec<FrameSpec>,
}

fn frame_matches(spec: &FrameSpec, frame: &lfi_vm::Frame) -> bool {
    if let Some(module) = &spec.module {
        if module != &frame.module {
            return false;
        }
    }
    if let Some(offset) = spec.offset {
        if offset != frame.offset {
            return false;
        }
    }
    if let Some(function) = &spec.function {
        if frame.function.as_deref() != Some(function.as_str()) {
            return false;
        }
    }
    if spec.file.is_some() || spec.line.is_some() {
        let Some((file, line)) = &frame.source else {
            return false;
        };
        if let Some(want_file) = &spec.file {
            if !file.ends_with(want_file) {
                return false;
            }
        }
        if let Some(want_line) = spec.line {
            if *line != want_line {
                return false;
            }
        }
    }
    true
}

impl Trigger for CallStackTrigger {
    fn eval(&mut self, ctx: &mut TriggerCtx<'_, '_>) -> bool {
        let backtrace = ctx.call.backtrace();
        self.frames
            .iter()
            .all(|spec| backtrace.iter().any(|frame| frame_matches(spec, frame)))
    }
}

/// Fires when a relationship between a global variable and a constant holds
/// (e.g. `numConnections == maxConnections` in the paper; here the right-hand
/// side is a constant and comparisons between two globals can be composed
/// from two instances).
pub struct ProgramStateTrigger {
    /// Exported global variable name.
    pub variable: String,
    /// One of `==`, `!=`, `<`, `<=`, `>`, `>=`.
    pub op: String,
    /// Constant to compare against.
    pub value: Word,
}

impl Trigger for ProgramStateTrigger {
    fn eval(&mut self, ctx: &mut TriggerCtx<'_, '_>) -> bool {
        let Some(actual) = ctx.call.read_global(&self.variable) else {
            return false;
        };
        match self.op.as_str() {
            "==" => actual == self.value,
            "!=" => actual != self.value,
            "<" => actual < self.value,
            "<=" => actual <= self.value,
            ">" => actual > self.value,
            ">=" => actual >= self.value,
            _ => false,
        }
    }
}

/// Fires exactly on the n-th interception of the associated function.
pub struct CallCountTrigger {
    /// 1-based call number to fire on.
    pub count: u64,
}

impl Trigger for CallCountTrigger {
    fn eval(&mut self, ctx: &mut TriggerCtx<'_, '_>) -> bool {
        ctx.call_count == self.count
    }
}

/// Fires exactly once, then never again. Composed at the end of conjunctions
/// to produce one-shot injections (§3.2, §4.3).
pub struct SingletonTrigger {
    fired: bool,
}

impl Trigger for SingletonTrigger {
    fn eval(&mut self, _ctx: &mut TriggerCtx<'_, '_>) -> bool {
        if self.fired {
            false
        } else {
            self.fired = true;
            true
        }
    }
}

/// Fires with a configurable probability (deterministic given the seed).
pub struct RandomTrigger {
    /// Probability in `[0, 1]`.
    pub probability: f64,
    rng: StdRng,
}

impl Trigger for RandomTrigger {
    fn eval(&mut self, _ctx: &mut TriggerCtx<'_, '_>) -> bool {
        self.probability > 0.0 && self.rng.gen_bool(self.probability.clamp(0.0, 1.0))
    }
}

/// Fires when the i-th argument of the intercepted call equals a constant
/// (e.g. `fcntl(fd, F_GETLK, ...)` in the MySQL overhead experiment).
pub struct ArgTrigger {
    /// Zero-based argument index.
    pub index: usize,
    /// Value to compare against.
    pub value: Word,
}

impl Trigger for ArgTrigger {
    fn eval(&mut self, ctx: &mut TriggerCtx<'_, '_>) -> bool {
        ctx.call.arg(self.index) == self.value
    }
}

/// Fires when the i-th argument is a file descriptor of the given kind
/// (regular file, socket, FIFO, ...), like the Apache `apr_file_read`
/// trigger in §7.4 that checks the descriptor with `apr_stat`.
pub struct FdKindTrigger {
    /// Zero-based argument index holding the descriptor.
    pub index: usize,
    /// Expected `lfi_arch::abi::filekind` value.
    pub kind: Word,
}

impl Trigger for FdKindTrigger {
    fn eval(&mut self, ctx: &mut TriggerCtx<'_, '_>) -> bool {
        let fd = ctx.call.arg(self.index);
        ctx.call.fd_kind(fd) == Some(self.kind)
    }
}

/// Fires when the calling thread currently holds at least one mutex
/// (the `WithMutex` composition from §4.2).
pub struct WithMutexTrigger;

impl Trigger for WithMutexTrigger {
    fn eval(&mut self, ctx: &mut TriggerCtx<'_, '_>) -> bool {
        ctx.call.mutexes_held() > 0
    }
}

/// Fires when the call was made (directly, or anywhere up the stack) from a
/// given function — used to scope injection to a particular module or request
/// path, like requiring `ap_process_request_internal` on the stack.
pub struct CallerFunctionTrigger {
    /// Function name to look for.
    pub function: String,
    /// If false, only the innermost frame is considered.
    pub anywhere: bool,
}

impl Trigger for CallerFunctionTrigger {
    fn eval(&mut self, ctx: &mut TriggerCtx<'_, '_>) -> bool {
        if !self.anywhere {
            return ctx.call.caller_function().as_deref() == Some(self.function.as_str());
        }
        ctx.call
            .backtrace()
            .iter()
            .any(|f| f.function.as_deref() == Some(self.function.as_str()))
    }
}

/// Fires when the intercepted call occurs within `distance` source lines of
/// the most recent call to a watched function in the same file — the
/// "close shortly after a mutex unlock" custom trigger that reproduces the
/// MySQL double-unlock bug with 100% precision in Table 2.
pub struct ProximityTrigger {
    /// Function whose call sites are recorded (e.g. `pthread_mutex_unlock`).
    pub watch: String,
    /// Maximum distance in source lines.
    pub distance: u32,
    last_seen: Option<(String, u32)>,
}

impl Trigger for ProximityTrigger {
    fn eval(&mut self, ctx: &mut TriggerCtx<'_, '_>) -> bool {
        if ctx.function == self.watch {
            self.last_seen = ctx.call.call_site_source();
            return false;
        }
        let (Some((watch_file, watch_line)), Some((file, line))) =
            (self.last_seen.clone(), ctx.call.call_site_source())
        else {
            return false;
        };
        file == watch_file && line.abs_diff(watch_line) <= self.distance
    }
}

/// Policy of a distributed trigger's central controller (§3.2): it sees which
/// node intercepted which function and decides globally whether to fire.
#[derive(Debug, Clone)]
pub enum DistributedPolicy {
    /// Fire on every call made by one specific node.
    TargetNode {
        /// The victim node id.
        node: i64,
    },
    /// Fire with a global probability, shared across all nodes.
    GlobalRandom {
        /// Probability in `[0, 1]`.
        probability: f64,
    },
    /// Rotate through the listed nodes, injecting `burst` consecutive faults
    /// into each in turn (the §7.3 denial-of-service schedule).
    RotatingBursts {
        /// Victim nodes, in rotation order.
        nodes: Vec<i64>,
        /// Number of consecutive injections per victim.
        burst: u64,
    },
    /// Never fire (baseline: interception without injection).
    Never,
}

/// Shared state of the distributed trigger controller.
#[derive(Debug)]
pub struct DistributedControllerState {
    policy: DistributedPolicy,
    rng: StdRng,
    injections: u64,
    consultations: u64,
}

/// The central controller shared by all replicas' distributed triggers.
#[derive(Debug, Clone)]
pub struct DistributedController {
    state: Arc<Mutex<DistributedControllerState>>,
}

impl DistributedController {
    /// Create a controller with the given policy and RNG seed.
    pub fn new(policy: DistributedPolicy, seed: u64) -> DistributedController {
        DistributedController {
            state: Arc::new(Mutex::new(DistributedControllerState {
                policy,
                rng: StdRng::seed_from_u64(seed),
                injections: 0,
                consultations: 0,
            })),
        }
    }

    /// Ask the controller whether node `node` should fail this call.
    pub fn should_fire(&self, node: i64, _function: &str) -> bool {
        let mut state = self.state.lock();
        state.consultations += 1;
        let fire = match &state.policy {
            DistributedPolicy::Never => false,
            DistributedPolicy::TargetNode { node: victim } => node == *victim,
            DistributedPolicy::GlobalRandom { probability } => {
                let p = probability.clamp(0.0, 1.0);
                p > 0.0 && { state.rng.gen_bool(p) }
            }
            DistributedPolicy::RotatingBursts { nodes, burst } => {
                if nodes.is_empty() || *burst == 0 {
                    false
                } else {
                    let slot = (state.injections / burst) as usize % nodes.len();
                    node == nodes[slot]
                }
            }
        };
        if fire {
            state.injections += 1;
        }
        fire
    }

    /// Total injections granted so far.
    pub fn injections(&self) -> u64 {
        self.state.lock().injections
    }

    /// Total times any node consulted the controller.
    pub fn consultations(&self) -> u64 {
        self.state.lock().consultations
    }

    /// Register the `DistributedTrigger` class backed by this controller in a
    /// registry, so scenarios can reference it by name.
    pub fn register(&self, registry: &mut TriggerRegistry) {
        let controller = self.clone();
        registry.register("DistributedTrigger", move |_decl| {
            Ok(Box::new(DistributedTrigger {
                controller: controller.clone(),
            }) as Box<dyn Trigger>)
        });
    }
}

/// Node-local end of a distributed trigger: forwards the decision to the
/// shared [`DistributedController`].
pub struct DistributedTrigger {
    /// The shared controller.
    pub controller: DistributedController,
}

impl Trigger for DistributedTrigger {
    fn eval(&mut self, ctx: &mut TriggerCtx<'_, '_>) -> bool {
        self.controller
            .should_fire(ctx.call.node_id(), ctx.function)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_knows_the_stock_triggers() {
        let registry = TriggerRegistry::default();
        let names = registry.class_names();
        for class in [
            "CallStackTrigger",
            "ProgramStateTrigger",
            "CallCountTrigger",
            "SingletonTrigger",
            "RandomTrigger",
            "ArgTrigger",
            "FdKindTrigger",
            "WithMutexTrigger",
            "CallerFunctionTrigger",
            "ProximityTrigger",
        ] {
            assert!(names.iter().any(|n| n == class), "missing {class}");
        }
    }

    #[test]
    fn unknown_classes_and_bad_params_are_reported() {
        let registry = TriggerRegistry::default();
        let decl = TriggerDecl {
            id: "x".into(),
            class: "NoSuchTrigger".into(),
            params: BTreeMap::new(),
            frames: vec![],
        };
        assert!(registry.build(&decl).is_err());

        let decl = TriggerDecl {
            id: "x".into(),
            class: "RandomTrigger".into(),
            params: BTreeMap::new(), // missing probability
            frames: vec![],
        };
        assert!(registry.build(&decl).is_err());
    }

    #[test]
    fn custom_trigger_classes_can_be_registered() {
        struct Always;
        impl Trigger for Always {
            fn eval(&mut self, _ctx: &mut TriggerCtx<'_, '_>) -> bool {
                true
            }
        }
        let mut registry = TriggerRegistry::default();
        registry.register("AlwaysTrigger", |_| Ok(Box::new(Always)));
        let decl = TriggerDecl {
            id: "a".into(),
            class: "AlwaysTrigger".into(),
            params: BTreeMap::new(),
            frames: vec![],
        };
        assert!(registry.build(&decl).is_ok());
    }

    #[test]
    fn distributed_controller_policies() {
        let target = DistributedController::new(DistributedPolicy::TargetNode { node: 2 }, 0);
        assert!(!target.should_fire(1, "sendto"));
        assert!(target.should_fire(2, "sendto"));
        assert_eq!(target.injections(), 1);

        let rotating = DistributedController::new(
            DistributedPolicy::RotatingBursts {
                nodes: vec![1, 2, 3],
                burst: 2,
            },
            0,
        );
        // First two injections go to node 1, next two to node 2, ...
        assert!(rotating.should_fire(1, "sendto"));
        assert!(!rotating.should_fire(2, "sendto"));
        assert!(rotating.should_fire(1, "sendto"));
        assert!(rotating.should_fire(2, "sendto"));
        assert!(!rotating.should_fire(1, "sendto"));
        assert!(rotating.should_fire(2, "sendto"));
        assert!(rotating.should_fire(3, "sendto"));
        assert_eq!(rotating.injections(), 5);

        let random =
            DistributedController::new(DistributedPolicy::GlobalRandom { probability: 1.0 }, 7);
        assert!(random.should_fire(9, "recvfrom"));
        let never = DistributedController::new(DistributedPolicy::Never, 7);
        assert!(!never.should_fire(9, "recvfrom"));
        assert_eq!(never.consultations(), 1);
    }

    #[test]
    fn frame_spec_matching_rules() {
        let frame = lfi_vm::Frame {
            module: "bind-lite".into(),
            offset: 0x120,
            function: Some("stats_channel".into()),
            source: Some(("bind/stats.c".into(), 42)),
        };
        let by_offset = FrameSpec {
            module: Some("bind-lite".into()),
            offset: Some(0x120),
            ..FrameSpec::default()
        };
        assert!(frame_matches(&by_offset, &frame));
        let by_line = FrameSpec {
            file: Some("stats.c".into()),
            line: Some(42),
            ..FrameSpec::default()
        };
        assert!(frame_matches(&by_line, &frame));
        let wrong = FrameSpec {
            module: Some("git-lite".into()),
            ..FrameSpec::default()
        };
        assert!(!frame_matches(&wrong, &frame));
        let wrong_line = FrameSpec {
            file: Some("stats.c".into()),
            line: Some(43),
            ..FrameSpec::default()
        };
        assert!(!frame_matches(&wrong_line, &frame));
    }
}
