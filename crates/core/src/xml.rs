//! Minimal XML parser for the fault-injection scenario language.
//!
//! The paper uses an XML test-specification language so scenarios are both
//! human- and machine-readable (§4.1). This module implements the small XML
//! subset those scenarios need: elements, attributes (single or double
//! quoted), nested children, text content, comments, and self-closing tags.

use std::fmt;

/// A parsed XML element.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct XmlNode {
    /// Element name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<XmlNode>,
    /// Concatenated text content directly inside this element (trimmed).
    pub text: String,
}

impl XmlNode {
    /// Value of an attribute, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First child element with the given name.
    pub fn child(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All child elements with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlNode> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// Text content of a named child, if any.
    pub fn child_text(&self, name: &str) -> Option<&str> {
        self.child(name).map(|c| c.text.as_str())
    }

    /// Render this node (and its subtree) back to XML text.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        out.push_str(&pad);
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push_str(&format!(" {k}=\"{}\"", escape(v)));
        }
        if self.children.is_empty() && self.text.is_empty() {
            out.push_str(" />\n");
            return;
        }
        out.push('>');
        if !self.text.is_empty() {
            out.push_str(&escape(&self.text));
        }
        if !self.children.is_empty() {
            out.push('\n');
            for child in &self.children {
                child.write(out, indent + 1);
            }
            out.push_str(&pad);
        }
        out.push_str(&format!("</{}>\n", self.name));
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn unescape(text: &str) -> String {
    text.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&amp;", "&")
}

/// XML parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset in the input.
    pub position: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for XmlError {}

struct Parser<'a> {
    text: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            while self.pos < self.text.len() && self.text[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.text[self.pos..].starts_with(b"<!--") {
                if let Some(end) = find(self.text, self.pos + 4, b"-->") {
                    self.pos = end + 3;
                    continue;
                }
                self.pos = self.text.len();
            }
            if self.text[self.pos..].starts_with(b"<?") {
                if let Some(end) = find(self.text, self.pos + 2, b"?>") {
                    self.pos = end + 2;
                    continue;
                }
                self.pos = self.text.len();
            }
            break;
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while self.pos < self.text.len()
            && (self.text[self.pos].is_ascii_alphanumeric()
                || matches!(self.text[self.pos], b'_' | b'-' | b':' | b'.'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.text[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<XmlNode, XmlError> {
        if self.text.get(self.pos) != Some(&b'<') {
            return Err(self.err("expected `<`"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut node = XmlNode {
            name,
            ..XmlNode::default()
        };
        // Attributes.
        loop {
            while self.pos < self.text.len() && self.text[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            match self.text.get(self.pos) {
                Some(b'/') => {
                    self.pos += 1;
                    if self.text.get(self.pos) != Some(&b'>') {
                        return Err(self.err("expected `>` after `/`"));
                    }
                    self.pos += 1;
                    return Ok(node);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    if self.text.get(self.pos) != Some(&b'=') {
                        return Err(self.err("expected `=` after attribute name"));
                    }
                    self.pos += 1;
                    let quote = *self
                        .text
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated attribute"))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.err("attribute value must be quoted"));
                    }
                    self.pos += 1;
                    let start = self.pos;
                    while self.pos < self.text.len() && self.text[self.pos] != quote {
                        self.pos += 1;
                    }
                    if self.pos >= self.text.len() {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let value = String::from_utf8_lossy(&self.text[start..self.pos]).into_owned();
                    self.pos += 1;
                    node.attrs.push((key, unescape(&value)));
                }
                None => return Err(self.err("unterminated element")),
            }
        }
        // Content.
        loop {
            // Accumulate text until the next `<`.
            let start = self.pos;
            while self.pos < self.text.len() && self.text[self.pos] != b'<' {
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = String::from_utf8_lossy(&self.text[start..self.pos]);
                let chunk = chunk.trim();
                if !chunk.is_empty() {
                    if !node.text.is_empty() {
                        node.text.push(' ');
                    }
                    node.text.push_str(&unescape(chunk));
                }
            }
            if self.pos >= self.text.len() {
                return Err(self.err(format!("unterminated element `{}`", node.name)));
            }
            if self.text[self.pos..].starts_with(b"<!--") {
                match find(self.text, self.pos + 4, b"-->") {
                    Some(end) => {
                        self.pos = end + 3;
                        continue;
                    }
                    None => return Err(self.err("unterminated comment")),
                }
            }
            if self.text[self.pos..].starts_with(b"</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != node.name {
                    return Err(self.err(format!(
                        "mismatched closing tag `{close}` for `{}`",
                        node.name
                    )));
                }
                while self.pos < self.text.len() && self.text[self.pos].is_ascii_whitespace() {
                    self.pos += 1;
                }
                if self.text.get(self.pos) != Some(&b'>') {
                    return Err(self.err("expected `>` in closing tag"));
                }
                self.pos += 1;
                return Ok(node);
            }
            let child = self.parse_element()?;
            node.children.push(child);
        }
    }
}

fn find(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// Parse an XML document with a single root element (leading comments and an
/// XML declaration are allowed).
pub fn parse_xml(text: &str) -> Result<XmlNode, XmlError> {
    let mut parser = Parser {
        text: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws_and_comments();
    let node = parser.parse_element()?;
    Ok(node)
}

/// Parse a document that may have several top-level elements (the paper's
/// scenarios list `<trigger>` and `<function>` elements side by side); they
/// are wrapped in a synthetic `<scenario>` root if needed.
pub fn parse_xml_fragments(text: &str) -> Result<XmlNode, XmlError> {
    let trimmed = text.trim_start();
    if trimmed.starts_with("<scenario")
        || trimmed.starts_with("<?xml") && text.contains("<scenario")
    {
        return parse_xml(text);
    }
    let mut parser = Parser {
        text: text.as_bytes(),
        pos: 0,
    };
    let mut root = XmlNode {
        name: "scenario".to_string(),
        ..XmlNode::default()
    };
    loop {
        parser.skip_ws_and_comments();
        if parser.pos >= parser.text.len() {
            break;
        }
        root.children.push(parser.parse_element()?);
    }
    if root.children.len() == 1 && root.children[0].name == "scenario" {
        return Ok(root.children.remove(0));
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_elements_attributes_and_text() {
        let doc = r#"
            <!-- a scenario fragment -->
            <trigger id="readTrig1" class='ReadPipe'>
                <args>
                    <low>1024</low>
                    <high>4096</high>
                </args>
            </trigger>
        "#;
        let node = parse_xml(doc).unwrap();
        assert_eq!(node.name, "trigger");
        assert_eq!(node.attr("id"), Some("readTrig1"));
        assert_eq!(node.attr("class"), Some("ReadPipe"));
        let args = node.child("args").unwrap();
        assert_eq!(args.child_text("low"), Some("1024"));
        assert_eq!(args.child_text("high"), Some("4096"));
    }

    #[test]
    fn self_closing_tags_and_fragments() {
        let doc = r#"
            <trigger id="t1" class="RandomTrigger" />
            <function name="read" argc="3" return="-1" errno="EINVAL">
                <reftrigger ref="t1" />
            </function>
        "#;
        let root = parse_xml_fragments(doc).unwrap();
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "trigger");
        assert_eq!(root.children[1].attr("errno"), Some("EINVAL"));
        assert_eq!(root.children[1].children_named("reftrigger").count(), 1);
    }

    #[test]
    fn roundtrips_through_to_xml() {
        let doc = r#"<function name="read" argc="3"><reftrigger ref="a" /><reftrigger ref="b" /></function>"#;
        let node = parse_xml(doc).unwrap();
        let text = node.to_xml();
        let back = parse_xml(&text).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn escaped_entities_are_decoded() {
        let node = parse_xml(r#"<v expr="a &lt; b">x &amp; y</v>"#).unwrap();
        assert_eq!(node.attr("expr"), Some("a < b"));
        assert_eq!(node.text, "x & y");
    }

    #[test]
    fn reports_errors_for_malformed_documents() {
        assert!(parse_xml("<a><b></a>").is_err());
        assert!(parse_xml("<a foo=bar></a>").is_err());
        assert!(parse_xml("<a").is_err());
        assert!(parse_xml("plain text").is_err());
    }
}
