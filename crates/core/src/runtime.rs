//! The injection runtime: the shim-library logic that sits between the
//! application and its shared libraries.
//!
//! The [`InjectionEngine`] compiles a [`Scenario`] into per-function trigger
//! lists (looked up in O(1) per interception, §4.3), evaluates trigger
//! conjunctions with short-circuiting and lazy instantiation, applies the
//! injected return value and errno side effect, and records every injection
//! in a structured log (the paper's test log used to match injections to
//! observed failures and to replay them).

use std::collections::HashMap;

use lfi_arch::Word;
use lfi_vm::{CallContext, HookAction, HookHandler};
use serde::{Deserialize, Serialize};

use crate::scenario::Scenario;
use crate::triggers::{Trigger, TriggerCtx, TriggerRegistry};

/// One recorded injection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionRecord {
    /// Function whose call was failed.
    pub function: String,
    /// Injected return value.
    pub retval: Word,
    /// Injected errno, if any.
    pub errno: Option<Word>,
    /// Which interception of this function this was (1-based).
    pub call_count: u64,
    /// Module and offset of the call site.
    pub call_site: (String, u64),
    /// Source location of the call site, if debug info is present.
    pub source: Option<(String, u32)>,
    /// Trigger ids of the conjunction that fired.
    pub triggers: Vec<String>,
    /// Virtual time of the injection.
    pub clock: u64,
}

/// The injection log of one test run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionLog {
    /// Recorded injections, in order.
    pub records: Vec<InjectionRecord>,
    /// Total interceptions observed (including ones that did not inject).
    pub interceptions: u64,
    /// Total trigger evaluations performed (measures short-circuiting).
    pub trigger_evaluations: u64,
}

impl InjectionLog {
    /// Number of injections performed.
    pub fn injection_count(&self) -> usize {
        self.records.len()
    }

    /// Injections performed on a given function.
    pub fn injections_into(&self, function: &str) -> usize {
        self.records
            .iter()
            .filter(|r| r.function == function)
            .count()
    }

    /// Serialize the log as pretty JSON.
    pub fn to_json(&self) -> String {
        use lfi_json::Value;
        let records = self
            .records
            .iter()
            .map(|r| {
                Value::Obj(vec![
                    ("function".to_string(), Value::Str(r.function.clone())),
                    ("retval".to_string(), Value::Int(r.retval)),
                    ("errno".to_string(), r.errno.map_or(Value::Null, Value::Int)),
                    ("call_count".to_string(), Value::Int(r.call_count as i64)),
                    (
                        "call_site".to_string(),
                        Value::Arr(vec![
                            Value::Str(r.call_site.0.clone()),
                            Value::Int(r.call_site.1 as i64),
                        ]),
                    ),
                    (
                        "source".to_string(),
                        r.source.as_ref().map_or(Value::Null, |(file, line)| {
                            Value::Arr(vec![Value::Str(file.clone()), Value::Int(i64::from(*line))])
                        }),
                    ),
                    (
                        "triggers".to_string(),
                        Value::Arr(r.triggers.iter().cloned().map(Value::Str).collect()),
                    ),
                    ("clock".to_string(), Value::Int(r.clock as i64)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("records".to_string(), Value::Arr(records)),
            (
                "interceptions".to_string(),
                Value::Int(self.interceptions as i64),
            ),
            (
                "trigger_evaluations".to_string(),
                Value::Int(self.trigger_evaluations as i64),
            ),
        ])
        .to_pretty()
    }
}

struct CompiledAssoc {
    retval: Option<Word>,
    errno: Option<Word>,
    trigger_indices: Vec<usize>,
}

struct TriggerSlot {
    id: String,
    decl_index: usize,
    /// Lazily instantiated on first evaluation (§4.3 lazy initialization).
    instance: Option<Box<dyn Trigger>>,
}

/// The LFI injection engine; plugs into the VM as a [`HookHandler`].
pub struct InjectionEngine {
    registry: TriggerRegistry,
    scenario: Scenario,
    /// function name -> list of compiled associations (disjunction order).
    assocs: HashMap<String, Vec<CompiledAssoc>>,
    slots: Vec<TriggerSlot>,
    call_counts: HashMap<String, u64>,
    /// Structured injection log.
    pub log: InjectionLog,
    /// Virtual-time cost charged per trigger evaluation.
    pub trigger_eval_cost: u64,
    /// Stop injecting after this many injections (None = unlimited).
    pub max_injections: Option<u64>,
    /// If true, evaluate triggers but never actually inject (used by the
    /// overhead experiments in §7.4, which measure the trigger mechanism
    /// while letting all calls through).
    pub observe_only: bool,
}

impl std::fmt::Debug for InjectionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InjectionEngine")
            .field("functions", &self.assocs.keys().collect::<Vec<_>>())
            .field("injections", &self.log.injection_count())
            .finish()
    }
}

impl InjectionEngine {
    /// Compile a scenario with the default (stock) trigger registry.
    pub fn new(scenario: Scenario) -> Result<InjectionEngine, crate::triggers::TriggerBuildError> {
        InjectionEngine::with_registry(scenario, TriggerRegistry::default())
    }

    /// Compile a scenario with a custom registry (for custom trigger classes).
    pub fn with_registry(
        scenario: Scenario,
        registry: TriggerRegistry,
    ) -> Result<InjectionEngine, crate::triggers::TriggerBuildError> {
        // Validate the scenario first: duplicate trigger ids and undeclared
        // references used to slip through to this point and silently drop
        // associations; now they surface as build errors.
        scenario
            .validate()
            .map_err(|e| crate::triggers::TriggerBuildError {
                class: "<scenario>".to_string(),
                message: e.to_string(),
            })?;
        // Build one slot per declared trigger (instantiated lazily), and
        // verify up front that every class is known so configuration errors
        // surface before the test runs.
        let mut slots = Vec::new();
        for (index, decl) in scenario.triggers.iter().enumerate() {
            registry.build(decl)?;
            slots.push(TriggerSlot {
                id: decl.id.clone(),
                decl_index: index,
                instance: None,
            });
        }
        let slot_index: HashMap<String, usize> = slots
            .iter()
            .enumerate()
            .map(|(i, s)| (s.id.clone(), i))
            .collect();
        let mut assocs: HashMap<String, Vec<CompiledAssoc>> = HashMap::new();
        for assoc in &scenario.functions {
            let trigger_indices = assoc
                .triggers
                .iter()
                .filter_map(|id| slot_index.get(id).copied())
                .collect();
            assocs
                .entry(assoc.function.clone())
                .or_default()
                .push(CompiledAssoc {
                    retval: assoc.retval,
                    errno: assoc.errno,
                    trigger_indices,
                });
        }
        Ok(InjectionEngine {
            registry,
            scenario,
            assocs,
            slots,
            call_counts: HashMap::new(),
            log: InjectionLog::default(),
            trigger_eval_cost: 10,
            max_injections: None,
            observe_only: false,
        })
    }

    /// The functions this engine needs the loader to interpose on.
    pub fn interposed_functions(&self) -> Vec<String> {
        self.scenario.intercepted_functions()
    }

    /// The compiled scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Number of times a function has been intercepted so far.
    pub fn call_count(&self, function: &str) -> u64 {
        self.call_counts.get(function).copied().unwrap_or(0)
    }

    fn eval_slot(
        slots: &mut [TriggerSlot],
        registry: &TriggerRegistry,
        scenario: &Scenario,
        index: usize,
        ctx: &mut TriggerCtx<'_, '_>,
    ) -> bool {
        let slot = &mut slots[index];
        if slot.instance.is_none() {
            let decl = &scenario.triggers[slot.decl_index];
            slot.instance = registry.build(decl).ok();
        }
        match slot.instance.as_mut() {
            Some(trigger) => trigger.eval(ctx),
            None => false,
        }
    }
}

impl HookHandler for InjectionEngine {
    fn on_call(&mut self, func: &str, ctx: &mut CallContext<'_>) -> HookAction {
        let count = self.call_counts.entry(func.to_string()).or_insert(0);
        *count += 1;
        let count = *count;
        self.log.interceptions += 1;

        let Some(assocs) = self.assocs.get(func) else {
            return HookAction::Forward;
        };
        if let Some(limit) = self.max_injections {
            if self.log.records.len() as u64 >= limit {
                return HookAction::Forward;
            }
        }
        // Evaluate each association (disjunction). Within one association the
        // triggers form a conjunction evaluated with short-circuiting.
        for assoc_idx in 0..assocs.len() {
            let assoc = &self.assocs[func][assoc_idx];
            let trigger_indices = assoc.trigger_indices.clone();
            let (retval, errno) = (assoc.retval, assoc.errno);
            let mut all_true = !trigger_indices.is_empty() || retval.is_some();
            for &slot_idx in &trigger_indices {
                self.log.trigger_evaluations += 1;
                ctx.add_cost(self.trigger_eval_cost);
                let mut trigger_ctx = TriggerCtx {
                    function: func,
                    call_count: count,
                    call: ctx,
                };
                let fired = Self::eval_slot(
                    &mut self.slots,
                    &self.registry,
                    &self.scenario,
                    slot_idx,
                    &mut trigger_ctx,
                );
                if !fired {
                    all_true = false;
                    break; // Short-circuit: remaining triggers are not invoked.
                }
            }
            if !all_true {
                continue;
            }
            // Observational associations (return="unused") never inject.
            let Some(retval) = retval else {
                continue;
            };
            if self.observe_only {
                continue;
            }
            let (module, offset) = ctx.call_site();
            self.log.records.push(InjectionRecord {
                function: func.to_string(),
                retval,
                errno,
                call_count: count,
                call_site: (module.to_string(), offset),
                source: ctx.call_site_source(),
                triggers: trigger_indices
                    .iter()
                    .map(|&i| self.slots[i].id.clone())
                    .collect(),
                clock: ctx.clock(),
            });
            return HookAction::Return {
                value: retval,
                errno,
            };
        }
        HookAction::Forward
    }
}

/// Where a [`PauseAtCall`] handler stops the machine.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PauseMode {
    /// Pause before the k-th tracked call (1-based). `u64::MAX` in
    /// practice never fires: the handler just records the trace.
    AtIndex(u64),
    /// Pause before the first call to one specific tracked function,
    /// forwarding (and recording) every other tracked call on the way.
    AtFunction(String),
}

/// A handler that forwards every intercepted call while counting calls to
/// a *tracked* set of functions (the injectable library functions), and
/// pauses the machine just before a chosen one of them executes.
///
/// The pause happens *before* the call executes ([`HookAction::Pause`]
/// leaves the program counter on the call instruction and rolls the
/// counters back), so a [`lfi_vm::MachineSnapshot`] taken at the pause
/// point can be resumed under a different handler — typically an
/// [`InjectionEngine`] — which then observes that same call as its next
/// interception. This is the runtime half of session-based execution: the
/// workload prefix up to the k-th injectable library call runs once, and
/// every injection scenario forks from there.
///
/// Three pause policies:
///
/// * [`PauseAtCall::at_first`] — before the first tracked call (the flat
///   session prefix of one snapshot per `(target, workload)` pair);
/// * [`PauseAtCall::at_index`] — before the k-th tracked call (1-based),
///   used to materialize deeper snapshot-tree nodes along a known trace;
/// * [`PauseAtCall::at_function`] — before the first call to one specific
///   function, used to *discover* that function's depth while recording
///   every tracked call forwarded on the way in [`PauseAtCall::forwarded`].
///
/// The paused call is **not** counted or recorded: on resume (under any
/// handler) it is re-observed, so a handler that pauses must not be reused
/// to resume the same machine — it would pause on the same call forever.
#[derive(Debug, Clone)]
pub struct PauseAtCall {
    tracked: std::collections::BTreeSet<String>,
    mode: PauseMode,
    /// Tracked calls already forwarded (1-based position = injectable-call
    /// index). The paused call itself is in `paused_at`, not here.
    pub forwarded: Vec<String>,
    /// The function whose call triggered the pause, once paused.
    pub paused_at: Option<String>,
}

impl PauseAtCall {
    fn with_mode<I, S>(functions: I, mode: PauseMode) -> PauseAtCall
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        PauseAtCall {
            tracked: functions.into_iter().map(Into::into).collect(),
            mode,
            forwarded: Vec::new(),
            paused_at: None,
        }
    }

    /// Pause before the first call to any of `functions`.
    pub fn at_first<I, S>(functions: I) -> PauseAtCall
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        PauseAtCall::at_index(functions, 1)
    }

    /// Pause before the k-th (1-based) call to any of `functions`; the
    /// k-1 earlier tracked calls are forwarded and recorded in order.
    pub fn at_index<I, S>(functions: I, k: u64) -> PauseAtCall
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        PauseAtCall::with_mode(functions, PauseMode::AtIndex(k.max(1)))
    }

    /// Pause before the *next* tracked call after a previous pause point —
    /// the single step of pause-at-each-call deepening. A machine paused by
    /// another `PauseAtCall` re-observes its paused call on resume, so this
    /// is `at_index(functions, 2)`: the re-observed call is forwarded (and
    /// recorded) and the machine stops before the one after it. Stepping a
    /// prefix with a fresh `at_next` handler per step therefore visits
    /// every injectable call exactly once, which is how one deepening pass
    /// can snapshot all intermediate depths instead of only its endpoint.
    pub fn at_next<I, S>(functions: I) -> PauseAtCall
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        PauseAtCall::at_index(functions, 2)
    }

    /// Pause before the first call to `function` specifically, forwarding
    /// (and recording) calls to the other tracked `functions` on the way.
    pub fn at_function<I, S>(functions: I, function: impl Into<String>) -> PauseAtCall
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        PauseAtCall::with_mode(functions, PauseMode::AtFunction(function.into()))
    }

    /// Never pause: run to the terminal state recording the complete
    /// tracked-call trace in [`PauseAtCall::forwarded`].
    pub fn trace_only<I, S>(functions: I) -> PauseAtCall
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        PauseAtCall::with_mode(functions, PauseMode::AtIndex(u64::MAX))
    }
}

impl HookHandler for PauseAtCall {
    fn on_call(&mut self, func: &str, _ctx: &mut CallContext<'_>) -> HookAction {
        if !self.tracked.contains(func) {
            return HookAction::Forward;
        }
        let pause_here = match &self.mode {
            PauseMode::AtIndex(k) => self.forwarded.len() as u64 + 1 == *k,
            PauseMode::AtFunction(f) => f == func,
        };
        if pause_here {
            self.paused_at = Some(func.to_string());
            HookAction::Pause
        } else {
            self.forwarded.push(func.to_string());
            HookAction::Forward
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::scenario::{FunctionAssoc, TriggerDecl};

    use super::*;

    fn singleton_scenario(func: &str) -> Scenario {
        Scenario::new()
            .with_trigger(TriggerDecl {
                id: "once".into(),
                class: "SingletonTrigger".into(),
                params: Default::default(),
                frames: vec![],
            })
            .with_function(FunctionAssoc {
                function: func.into(),
                argc: 3,
                retval: Some(-1),
                errno: Some(lfi_arch::errno::EIO),
                triggers: vec!["once".into()],
            })
    }

    #[test]
    fn engine_reports_interposed_functions() {
        let engine = InjectionEngine::new(singleton_scenario("read")).unwrap();
        assert_eq!(engine.interposed_functions(), vec!["read".to_string()]);
        assert_eq!(engine.log.injection_count(), 0);
    }

    #[test]
    fn unknown_trigger_classes_fail_at_compile_time() {
        let scenario = Scenario::new().with_trigger(TriggerDecl {
            id: "x".into(),
            class: "Bogus".into(),
            params: Default::default(),
            frames: vec![],
        });
        assert!(InjectionEngine::new(scenario).is_err());
    }

    #[test]
    fn invalid_scenarios_fail_at_engine_build_time() {
        // Undeclared trigger reference.
        let undeclared = Scenario::new().with_function(FunctionAssoc {
            function: "read".into(),
            argc: 3,
            retval: Some(-1),
            errno: None,
            triggers: vec!["ghost".into()],
        });
        assert!(InjectionEngine::new(undeclared).is_err());
        // Duplicate trigger id.
        let dup = TriggerDecl {
            id: "once".into(),
            class: "SingletonTrigger".into(),
            params: Default::default(),
            frames: vec![],
        };
        let duplicated = Scenario::new().with_trigger(dup.clone()).with_trigger(dup);
        assert!(InjectionEngine::new(duplicated).is_err());
    }

    #[test]
    fn log_serializes_to_json() {
        let mut log = InjectionLog::default();
        log.records.push(InjectionRecord {
            function: "read".into(),
            retval: -1,
            errno: Some(5),
            call_count: 3,
            call_site: ("app".into(), 0x120),
            source: Some(("app.c".into(), 17)),
            triggers: vec!["t1".into()],
            clock: 999,
        });
        let json = log.to_json();
        assert!(json.contains("\"read\""));
        assert!(json.contains("app.c"));
        assert_eq!(log.injections_into("read"), 1);
        assert_eq!(log.injections_into("write"), 0);
    }
}
