//! Minimal JSON support for the LFI tool chain.
//!
//! Fault profiles and injection logs are exchanged as JSON documents (the
//! analogue of the original tool's XML fault-profile files). The build
//! environment cannot fetch `serde_json`, so this crate provides the small
//! piece actually needed: an ordered [`Value`] model, a strict parser, and a
//! pretty-printer whose output matches `serde_json::to_string_pretty`'s
//! layout (two-space indent, `"key": value` pairs).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document node. Object keys keep insertion order so emitted
/// documents are stable and diff-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (all numbers in LFI documents are 64-bit integers).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The integer payload, if this is a number.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Member lookup, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object members as an ordered map, if this is an object.
    pub fn as_obj(&self) -> Option<BTreeMap<&str, &Value>> {
        match self {
            Value::Obj(members) => Some(members.iter().map(|(k, v)| (k.as_str(), v)).collect()),
            _ => None,
        }
    }

    /// Render with two-space indentation (serde_json pretty layout).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Render on a single line with no insignificant whitespace
    /// (`{"key":value}` / `[1,2]`) — the framing line-delimited streams
    /// (JSONL) require, where a pretty-printed value would split one
    /// document across many lines.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(v) => out.push_str(&v.to_string()),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(v) => out.push_str(&v.to_string()),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Value::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in members.iter().enumerate() {
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input.
    pub position: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting bound for arrays/objects: recursive descent must not overflow
/// the stack on corrupt or adversarial input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    text: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.text.len() && self.text[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.text.get(self.pos).copied()
    }

    fn eat(&mut self, token: &str) -> Result<(), JsonError> {
        if self.text[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{token}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        if self.depth >= MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        self.depth += 1;
        let value = self.parse_value_inner();
        self.depth -= 1;
        value
    }

    fn parse_value_inner(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|_| Value::Null),
            Some(b't') => self.eat("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("only integer numbers are supported"));
        }
        let text = std::str::from_utf8(&self.text[start..self.pos]).expect("digits are UTF-8");
        text.parse()
            .map(Value::Int)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.text.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.text[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.eat("\"")?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(escape) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uDC00`-`\uDFFF`, together
                            // encoding one supplementary-plane character.
                            let code = if (0xD800..0xDC00).contains(&code) {
                                if self.eat("\\u").is_err() {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(self.err(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte before.
                    let rest = &self.text[self.pos - 1..];
                    let decoded = std::str::from_utf8(&rest[..rest.len().min(4)])
                        .ok()
                        .and_then(|s| s.chars().next())
                        .or_else(|| {
                            (1..=3).find_map(|n| {
                                std::str::from_utf8(rest.get(..n)?)
                                    .ok()
                                    .and_then(|s| s.chars().next())
                            })
                        })
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    self.pos += decoded.len_utf8() - 1;
                    out.push(decoded);
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, JsonError> {
        self.eat("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, JsonError> {
        self.eat("{")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(":")?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parse one JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut parser = Parser {
        text: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.text.len() {
        return Err(parser.err("trailing characters after document"));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_documents() {
        let doc = Value::Obj(vec![
            ("library".into(), Value::Str("libc".into())),
            (
                "cases".into(),
                Value::Arr(vec![
                    Value::Obj(vec![
                        ("retval".into(), Value::Int(-1)),
                        ("errno".into(), Value::Int(9)),
                    ]),
                    Value::Obj(vec![
                        ("retval".into(), Value::Int(0)),
                        ("errno".into(), Value::Null),
                    ]),
                ]),
            ),
            ("dynamic".into(), Value::Bool(true)),
        ]);
        let text = doc.to_pretty();
        assert!(text.contains("\"errno\": 9"));
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn compact_rendering_is_single_line_and_reparses() {
        let doc = Value::Obj(vec![
            ("type".into(), Value::Str("unit_finished".into())),
            (
                "values".into(),
                Value::Arr(vec![Value::Int(1), Value::Null, Value::Bool(false)]),
            ),
            ("empty_obj".into(), Value::Obj(vec![])),
            ("empty_arr".into(), Value::Arr(vec![])),
            ("note".into(), Value::Str("line\nbreak".into())),
        ]);
        let text = doc.to_compact();
        assert!(!text.contains('\n'), "one document, one line: {text}");
        assert_eq!(
            text,
            r#"{"type":"unit_finished","values":[1,null,false],"empty_obj":{},"empty_arr":[],"note":"line\nbreak"}"#
        );
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let doc = Value::Str("a\"b\\c\nd\te\u{1}".into());
        let text = doc.to_pretty();
        assert_eq!(text, r#""a\"b\\c\nd\te\u0001""#);
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_unicode_and_whitespace() {
        let value = parse("  { \"k\" : [ 1 , -2 , \"caf\u{e9}\" , null , false ] } ").unwrap();
        let items = value.get("k").unwrap().as_arr().unwrap();
        assert_eq!(items[0].as_int(), Some(1));
        assert_eq!(items[1].as_int(), Some(-2));
        assert_eq!(items[2].as_str(), Some("caf\u{e9}"));
        assert_eq!(items[3], Value::Null);
        assert_eq!(items[4].as_bool(), Some(false));
    }

    #[test]
    fn decodes_surrogate_pair_escapes() {
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Value::Str("\u{1F600}".into())
        );
        // Literal (non-escaped) multi-byte UTF-8 also round-trips.
        assert_eq!(
            parse("\"\u{1F600}\"").unwrap(),
            Value::Str("\u{1F600}".into())
        );
        for bad in [r#""\ud83d""#, r#""\ud83dx""#, r#""\ud83dA""#] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "got: {}", err.message);
        // Reasonable nesting still parses.
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1.5", "\"\\q\"", "{} {}"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
