//! Cross-crate integration tests: the full LFI workflow (profile, analyze,
//! generate, inject, diagnose) running against the bundled targets.

use lfi::prelude::*;
use lfi::targets::{self, FsSetupWorkload};

#[test]
fn generated_scenario_finds_the_unchecked_malloc_in_git_diff() {
    let controller = targets::standard_controller();
    let exe = targets::git_lite();
    let scenario = controller.generate_scenario(&exe, false);
    assert!(
        scenario.functions.iter().any(|f| f.function == "malloc"),
        "the analyzer must target git-lite's unchecked mallocs"
    );
    let config = TestConfig {
        args: vec!["diff".into(), "3".into(), "4".into()],
        ..TestConfig::default()
    };
    let report = controller
        .run_test(&exe, &scenario, &mut FsSetupWorkload, &config)
        .expect("run");
    assert!(report.outcome.is_crash(), "outcome: {:?}", report.outcome);
    assert!(report.injections.injection_count() >= 1);
    // The injection log names the function and the call site that was failed.
    assert!(report
        .injections
        .records
        .iter()
        .any(|r| r.function == "malloc" && r.call_site.0 == "git-lite"));
}

#[test]
fn checked_recovery_code_survives_injection_cleanly() {
    // bind-lite checks its zone-file open; injecting a failure there must
    // exercise the recovery path (clean failure), not crash.
    let net = NetHandle::default();
    let controller = targets::networked_controller(net.clone());
    let exe = targets::bind_lite();
    let profile = controller.profile_libraries();
    let open_sites = exe.call_sites_of("open");
    assert!(!open_sites.is_empty());
    // Find the open call inside load_zone.
    let load_zone_site = open_sites
        .iter()
        .copied()
        .find(|&off| {
            exe.containing_function(off)
                .map(|e| e.name == "load_zone")
                .unwrap_or(false)
        })
        .expect("load_zone opens the zone file");
    let case = profile
        .function("open")
        .unwrap()
        .representative_case()
        .unwrap();
    let scenario = Scenario::new()
        .with_trigger(TriggerDecl {
            id: "zone".into(),
            class: "CallStackTrigger".into(),
            params: Default::default(),
            frames: vec![FrameSpec {
                module: Some("bind-lite".into()),
                offset: Some(load_zone_site),
                ..FrameSpec::default()
            }],
        })
        .with_function(FunctionAssoc {
            function: "open".into(),
            argc: 3,
            retval: Some(case.retval),
            errno: case.errno,
            triggers: vec!["zone".into()],
        });
    let mut workload = targets::BindWorkload::typical(net);
    let config = TestConfig {
        args: vec!["4".into()],
        ..TestConfig::default()
    };
    let report = controller
        .run_test(&exe, &scenario, &mut workload, &config)
        .expect("run");
    assert_eq!(report.outcome, TestOutcome::CleanFailure(1));
    assert!(report.output.contains("cannot open zone file"));
}

#[test]
fn scenario_xml_roundtrip_runs_identically() {
    let controller = targets::standard_controller();
    let exe = targets::git_lite();
    let scenario = controller.generate_scenario(&exe, false);
    let xml = scenario.to_xml();
    let reparsed = Scenario::parse_xml(&xml).expect("generated XML parses");
    assert_eq!(reparsed, scenario);
}

#[test]
fn call_count_and_singleton_triggers_compose() {
    // Fail only the 3rd write of httpd-lite, exactly once.
    let controller = targets::standard_controller();
    let exe = targets::httpd_lite();
    let scenario = Scenario::new()
        .with_trigger(TriggerDecl {
            id: "third".into(),
            class: "CallCountTrigger".into(),
            params: [("count".to_string(), "3".to_string())]
                .into_iter()
                .collect(),
            frames: vec![],
        })
        .with_trigger(TriggerDecl {
            id: "once".into(),
            class: "SingletonTrigger".into(),
            params: Default::default(),
            frames: vec![],
        })
        .with_function(FunctionAssoc {
            function: "read".into(),
            argc: 3,
            retval: Some(-1),
            errno: Some(lfi::arch::errno::EIO),
            triggers: vec!["third".into(), "once".into()],
        });
    let config = TestConfig {
        args: vec!["10".into(), "1".into()],
        ..TestConfig::default()
    };
    let report = controller
        .run_test(&exe, &scenario, &mut FsSetupWorkload, &config)
        .expect("run");
    assert_eq!(report.injections.injection_count(), 1);
    assert_eq!(report.injections.records[0].call_count, 3);
    // httpd-lite logs the read error and keeps serving.
    assert!(matches!(report.outcome, TestOutcome::Passed));
    assert!(report.output.contains("read error"));
}

#[test]
fn random_trigger_injection_rate_is_roughly_the_configured_probability() {
    let controller = targets::standard_controller();
    let exe = targets::httpd_lite();
    let scenario = Scenario::new()
        .with_trigger(TriggerDecl {
            id: "rnd".into(),
            class: "RandomTrigger".into(),
            params: [
                ("probability".to_string(), "0.3".to_string()),
                ("seed".to_string(), "5".to_string()),
            ]
            .into_iter()
            .collect(),
            frames: vec![],
        })
        .with_function(FunctionAssoc {
            function: "close".into(),
            argc: 1,
            retval: Some(-1),
            errno: Some(lfi::arch::errno::EIO),
            triggers: vec!["rnd".into()],
        });
    let config = TestConfig {
        args: vec!["100".into(), "1".into()],
        ..TestConfig::default()
    };
    let report = controller
        .run_test(&exe, &scenario, &mut FsSetupWorkload, &config)
        .expect("run");
    let interceptions = report.injections.interceptions as f64;
    let injections = report.injections.injection_count() as f64;
    let rate = injections / interceptions;
    assert!(
        (0.15..=0.45).contains(&rate),
        "injection rate {rate} should be near 0.3"
    );
}

#[test]
fn profiler_knows_how_libc_functions_fail() {
    let profile = lfi::profiler::profile_library(&lfi::libc::build());
    let read = profile.function("read").expect("read profiled");
    assert!(read.error_return_values().contains(&-1));
    assert!(read.errno_values().contains(&lfi::arch::errno::EINTR));
    let fopen = profile.function("fopen").expect("fopen profiled");
    assert!(
        fopen.error_return_values().contains(&0),
        "fopen returns NULL"
    );
    let profile_json = profile.to_json();
    let reparsed = lfi::profiler::FaultProfile::from_json(&profile_json).unwrap();
    assert_eq!(reparsed, profile);
}

#[test]
fn trigger_evaluation_overhead_is_small() {
    // The Table 5/6 claim, as an invariant: evaluating a five-trigger
    // conjunction on every read call changes virtual run time by < 10%.
    let controller = targets::standard_controller();
    let exe = targets::httpd_lite();
    let run = |scenario: &Scenario| {
        let config = TestConfig {
            args: vec!["100".into(), "1".into()],
            observe_only: true,
            ..TestConfig::default()
        };
        controller
            .run_test(&exe, scenario, &mut FsSetupWorkload, &config)
            .expect("run")
            .virtual_time as f64
    };
    let baseline = run(&Scenario::new());
    let with_triggers = run(&lfi_bench_scenario());
    let overhead = (with_triggers - baseline) / baseline;
    assert!(
        overhead < 0.10,
        "trigger overhead {overhead:.3} should stay below 10%"
    );
}

fn lfi_bench_scenario() -> Scenario {
    // Rebuild the Table 5 five-trigger stack without depending on lfi-bench.
    let mut scenario = Scenario::new();
    let mut ids = Vec::new();
    for (id, class, params) in [
        (
            "t1",
            "FdKindTrigger",
            vec![
                ("index", "0".to_string()),
                ("kind", lfi::arch::abi::filekind::REGULAR.to_string()),
            ],
        ),
        (
            "t2",
            "CallerFunctionTrigger",
            vec![
                ("function", "apr_file_read".to_string()),
                ("anywhere", "1".to_string()),
            ],
        ),
        (
            "t3",
            "CallerFunctionTrigger",
            vec![
                ("function", "ap_process_request_internal".to_string()),
                ("anywhere", "1".to_string()),
            ],
        ),
        (
            "t4",
            "ProgramStateTrigger",
            vec![
                ("variable", "requests_done".to_string()),
                ("op", ">=".to_string()),
                ("value", "0".to_string()),
            ],
        ),
        ("t5", "WithMutexTrigger", vec![]),
    ] {
        ids.push(id.to_string());
        scenario.triggers.push(TriggerDecl {
            id: id.to_string(),
            class: class.to_string(),
            params: params
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            frames: vec![],
        });
    }
    scenario.functions.push(FunctionAssoc {
        function: "read".into(),
        argc: 3,
        retval: Some(-1),
        errno: Some(lfi::arch::errno::EIO),
        triggers: ids,
    });
    scenario
}
