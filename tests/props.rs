//! Property-based tests over the public tool-chain surface: arbitrary
//! scenarios survive the XML roundtrip, arbitrary mini-C-shaped inputs never
//! break the analyzer, and the analyzer's classification is consistent with
//! the checks it reports.

use std::collections::BTreeMap;

use lfi::prelude::*;
use proptest::prelude::*;

fn arb_identifier() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}".prop_map(|s| s)
}

fn arb_frame() -> impl Strategy<Value = FrameSpec> {
    (
        proptest::option::of(arb_identifier()),
        proptest::option::of(0u64..10_000),
        proptest::option::of(1u32..500),
    )
        .prop_map(|(module, offset, line)| FrameSpec {
            module,
            offset,
            function: None,
            file: line.map(|_| "src.c".to_string()),
            line,
        })
}

fn arb_trigger_decl(id: usize) -> impl Strategy<Value = TriggerDecl> {
    (
        prop_oneof![
            Just("SingletonTrigger".to_string()),
            Just("CallStackTrigger".to_string()),
            Just("RandomTrigger".to_string()),
            Just("CallCountTrigger".to_string()),
        ],
        proptest::collection::vec(arb_frame(), 0..3),
        proptest::collection::btree_map(arb_identifier(), "[a-z0-9.]{1,8}", 0..3),
    )
        .prop_map(move |(class, frames, params)| {
            let mut params: BTreeMap<String, String> = params;
            // Keep required parameters present so the scenario stays valid.
            if class == "RandomTrigger" {
                params.insert("probability".into(), "0.5".into());
            }
            if class == "CallCountTrigger" {
                params.insert("count".into(), "3".into());
            }
            TriggerDecl {
                id: format!("t{id}"),
                class,
                params,
                frames,
            }
        })
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (1usize..4)
        .prop_flat_map(|n| {
            let triggers: Vec<_> = (0..n).map(arb_trigger_decl).collect();
            (
                triggers,
                proptest::collection::vec(
                    (
                        arb_identifier(),
                        0usize..4,
                        -2i64..2,
                        proptest::option::of(1i64..30),
                    ),
                    1..4,
                ),
            )
        })
        .prop_map(|(triggers, funcs)| {
            let ids: Vec<String> = triggers.iter().map(|t| t.id.clone()).collect();
            let mut scenario = Scenario::new();
            scenario.triggers = triggers;
            for (i, (name, argc, retval, errno)) in funcs.into_iter().enumerate() {
                scenario.functions.push(FunctionAssoc {
                    function: name,
                    argc,
                    retval: Some(retval),
                    errno,
                    triggers: vec![ids[i % ids.len()].clone()],
                });
            }
            scenario
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scenario_xml_roundtrip(scenario in arb_scenario()) {
        prop_assert!(scenario.validate().is_ok());
        let xml = scenario.to_xml();
        let back = Scenario::parse_xml(&xml).expect("generated XML must parse");
        prop_assert_eq!(back, scenario);
    }

    #[test]
    fn xml_parser_never_panics(text in "\\PC{0,300}") {
        let _ = lfi::core::parse_xml(&text);
        let _ = lfi::core::parse_xml_fragments(&text);
        let _ = Scenario::parse_xml(&text);
    }

    #[test]
    fn analyzer_classification_is_consistent(check in proptest::bool::ANY, code in -3i64..3) {
        // Build a tiny program whose single read() call either checks the
        // return value against `code` or not at all; the analyzer must say
        // "checked" iff a check against an error code exists.
        let body = if check {
            format!("int f() {{ int n = read(0, 0, 8); if (n == {code}) {{ return 1; }} return 0; }}")
        } else {
            "int f() { int n = read(0, 0, 8); return n + 1; }".to_string()
        };
        let module = lfi::cc::Compiler::new("p", lfi::obj::ModuleKind::SharedLib)
            .add_source("p.c", &body)
            .compile()
            .expect("compile");
        let report = lfi::analyzer::analyze_call_sites(&module, "read", &[-1], AnalysisConfig::default());
        prop_assert_eq!(report.sites.len(), 1);
        let expected_checked = check && code == -1;
        prop_assert_eq!(
            report.sites[0].class == CallSiteClass::Checked,
            expected_checked
        );
    }

    #[test]
    fn compiled_arithmetic_matches_rust_semantics(a in -1000i64..1000, b in -1000i64..1000) {
        let src = format!("int main() {{ return {a} * 3 + {b} - ({a} / 7); }}");
        let exe = lfi::cc::Compiler::new("arith", lfi::obj::ModuleKind::Executable)
            .add_source("a.c", &src)
            .compile()
            .expect("compile");
        let image = lfi::vm::Loader::new().load(exe).expect("load");
        let mut machine = lfi::vm::Machine::new(image, lfi::vm::ProcessConfig::default());
        let exit = machine.run_to_completion(&mut lfi::vm::NoHooks);
        let expected = a * 3 + b - (a / 7);
        prop_assert_eq!(exit, RunExit::Exited(expected));
    }
}
